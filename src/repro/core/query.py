"""Unified reliability-query API: one picklable object per question.

Every reliability question the repo can answer — "what does this
clustering waste over a month?", "what fraction of cascades survive?",
"what do 2000 sampled failures measure?" — is expressed as a frozen
:class:`ReliabilityQuery` and answered as a frozen :class:`QueryResult`.
The CLI, the experiments, the benchmarks, the fuzzer's oracle and the
HTTP service (:mod:`repro.service`) all construct the same object; the
JSON wire format (``to_json``/``from_json``, versioned ``"v": 1``) *is*
the in-process API, so a query posted over the wire and a query built in
a test are literally interchangeable. This mirrors the
:class:`repro.simmpi.config.EngineConfig` redesign of the engine API:
loose-kwarg entry points (``montecarlo_scores``,
``CampaignSimulator.expected_waste``) survive one release as
:class:`DeprecationWarning` shims.

Queries are cheap value objects; the heavy per-(clustering, placement)
lookup tables they need are resolved once into a :class:`QueryTables`
bundle and memoized — in-process behind :func:`resolve_query`, and with
an explicit byte budget behind the service's
:class:`repro.service.cache.TableCache`. Monte-Carlo queries that share
a table bundle are *coalesced*: :func:`run_query_batch` concatenates
their sampled event batches and scores them in one vectorized pass.
Scoring is element-wise array indexing (:mod:`repro.core.tables`), so
the coalesced pass is bit-identical to scoring each query alone — the
property the service's micro-batching dispatcher and its equivalence
tests rely on.
"""

from __future__ import annotations

import hashlib
import json
import math
from collections import OrderedDict
from dataclasses import dataclass, fields, replace
from threading import Lock

import numpy as np

from repro.clustering.base import Clustering
from repro.clustering.strategies import (
    consecutive_clustering,
    distributed_clustering,
    naive_clustering,
    size_guided_clustering,
)
from repro.failures.catastrophic import (
    CatastrophicModel,
    MonteCarloEstimator,
    rs_half_tolerance,
    xor_tolerance,
)
from repro.failures.events import PAPER_TAXONOMY, FailureEvent, FailureTaxonomy
from repro.machine.machine import Machine
from repro.machine.placement import BlockPlacement
from repro.machine.tsubame2 import tsubame2_machine
from repro.models.campaign import CampaignConfig, CampaignSimulator
from repro.util.rng import resolve_rng

#: Wire-format version accepted by ``from_json``/``from_dict``.
QUERY_VERSION = 1

#: Erasure-encoding names ↔ the tolerance callables of the analytic model.
ENCODINGS = {"rs": rs_half_tolerance, "xor": xor_tolerance}
_ENCODING_OF_TOLERANCE = {rs_half_tolerance: "rs", xor_tolerance: "xor"}

METRICS = ("montecarlo", "expected_waste", "campaign", "survival", "waste_curve")

#: Metrics priced by :class:`CampaignSimulator`, whose erasure configuration
#: is fixed to FTI's Reed–Solomon setup.
_CAMPAIGN_METRICS = ("expected_waste", "campaign", "waste_curve")

#: Metrics whose curve points are independent — safe to split into chunks
#: (the service streams them as partial results).
STREAMABLE_METRICS = ("survival", "waste_curve")

MACHINE_PRESETS = ("tsubame2", "generic")

CLUSTERING_STRATEGIES = (
    "naive",
    "size-guided",
    "consecutive",
    "distributed",
    "labels",
)


def _check_unknown(data: dict, what: str, allowed) -> None:
    """Reject unknown wire fields loudly instead of silently ignoring them."""
    unknown = set(data) - set(allowed)
    if unknown:
        raise ValueError(
            f"unknown field(s) in {what}: {sorted(unknown)} "
            f"(allowed: {sorted(allowed)})"
        )


def _dataclass_from_dict(cls, data, what: str):
    """Strict dict → frozen-dataclass conversion (used for the nested
    taxonomy/campaign payloads, whose classes predate the wire format)."""
    if not isinstance(data, dict):
        raise ValueError(f"{what} must be an object, got {type(data).__name__}")
    names = [f.name for f in fields(cls)]
    _check_unknown(data, what, names)
    return cls(**data)


# ---------------------------------------------------------------------------
# Machine + clustering specs: declarative, picklable, JSON-able
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class MachineSpec:
    """Declarative machine description a query carries instead of a
    :class:`~repro.machine.machine.Machine` (which holds live storage
    devices and is not wire-friendly)."""

    preset: str = "tsubame2"
    nnodes: int = 128
    procs_per_node: int = 8

    def __post_init__(self) -> None:
        if self.preset not in MACHINE_PRESETS:
            raise ValueError(
                f"unknown machine preset {self.preset!r} "
                f"(expected one of {MACHINE_PRESETS})"
            )
        if self.nnodes < 1:
            raise ValueError(f"nnodes must be >= 1, got {self.nnodes}")
        if self.procs_per_node < 1:
            raise ValueError(
                f"procs_per_node must be >= 1, got {self.procs_per_node}"
            )

    @property
    def nranks(self) -> int:
        """Application processes hosted by the described machine."""
        return self.nnodes * self.procs_per_node

    def build(self) -> Machine:
        """Materialize the machine (fresh storage devices)."""
        if self.preset == "tsubame2":
            return tsubame2_machine(self.nnodes, self.procs_per_node)
        return Machine(self.nnodes, self.procs_per_node)

    @staticmethod
    def from_machine(machine: Machine) -> "MachineSpec":
        """Describe an existing block-placement machine."""
        if type(machine.placement) is not BlockPlacement:
            raise ValueError(
                "only block-placement machines are expressible as a "
                f"MachineSpec, got {type(machine.placement).__name__}"
            )
        return MachineSpec(
            preset="tsubame2",
            nnodes=machine.nnodes,
            procs_per_node=machine.procs_per_node,
        )

    def key(self) -> str:
        """Canonical cache-key fragment (stable across processes)."""
        return f"{self.preset}:{self.nnodes}x{self.procs_per_node}"

    def to_dict(self) -> dict:
        return {
            "preset": self.preset,
            "nnodes": self.nnodes,
            "procs_per_node": self.procs_per_node,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "MachineSpec":
        return _dataclass_from_dict(cls, data, "machine")


@dataclass(frozen=True)
class ClusteringSpec:
    """Declarative clustering description: one of the paper's parametric
    strategies, or explicit L1/L2 label vectors for anything else (the
    hierarchical partitioner's output, fuzz shapes, hand-built layouts)."""

    strategy: str = "naive"
    cluster_size: int = 32
    name: str | None = None
    l1: tuple[int, ...] = ()
    l2: tuple[int, ...] | None = None

    def __post_init__(self) -> None:
        if self.strategy not in CLUSTERING_STRATEGIES:
            raise ValueError(
                f"unknown clustering strategy {self.strategy!r} "
                f"(expected one of {CLUSTERING_STRATEGIES})"
            )
        object.__setattr__(self, "l1", tuple(int(x) for x in self.l1))
        if self.l2 is not None:
            object.__setattr__(self, "l2", tuple(int(x) for x in self.l2))
        if self.strategy == "labels":
            if not self.l1:
                raise ValueError("labels clustering requires a non-empty l1")
        else:
            if self.l1 or self.l2 is not None:
                raise ValueError(
                    f"label vectors are only valid with strategy='labels', "
                    f"not {self.strategy!r}"
                )
            if self.cluster_size < 1:
                raise ValueError(
                    f"cluster_size must be >= 1, got {self.cluster_size}"
                )

    def build(self, machine: Machine) -> Clustering:
        """Materialize the clustering for ``machine``."""
        n = machine.nranks
        if self.strategy == "naive":
            return naive_clustering(n, self.cluster_size)
        if self.strategy == "size-guided":
            return size_guided_clustering(n, self.cluster_size)
        if self.strategy == "consecutive":
            return consecutive_clustering(n, self.cluster_size, name=self.name)
        if self.strategy == "distributed":
            return distributed_clustering(
                machine.placement, self.cluster_size, name=self.name
            )
        if len(self.l1) != n:
            raise ValueError(
                f"label clustering covers {len(self.l1)} processes, "
                f"machine hosts {n}"
            )
        return Clustering(
            self.name or "labels",
            np.asarray(self.l1, dtype=np.int64),
            None if self.l2 is None else np.asarray(self.l2, dtype=np.int64),
        )

    @staticmethod
    def from_clustering(clustering: Clustering) -> "ClusteringSpec":
        """Describe an existing clustering exactly (as explicit labels)."""
        return ClusteringSpec(
            strategy="labels",
            name=clustering.name,
            l1=tuple(int(x) for x in clustering.l1_labels),
            l2=tuple(int(x) for x in clustering.l2_labels),
        )

    def key(self) -> str:
        """Canonical cache-key fragment. Label vectors are digested so the
        key stays short; the digest is stable across processes (unlike
        ``hash()``, which is salted)."""
        if self.strategy != "labels":
            return f"{self.strategy}:{self.cluster_size}:{self.name or ''}"
        digest = hashlib.sha256(
            np.asarray(self.l1, dtype=np.int64).tobytes()
            + b"|"
            + np.asarray(self.l2 if self.l2 is not None else self.l1,
                         dtype=np.int64).tobytes()
        ).hexdigest()[:16]
        return f"labels:{self.name or ''}:{digest}"

    def to_dict(self) -> dict:
        data: dict = {"strategy": self.strategy}
        if self.strategy == "labels":
            data["l1"] = list(self.l1)
            if self.l2 is not None:
                data["l2"] = list(self.l2)
        else:
            data["cluster_size"] = self.cluster_size
        if self.name is not None:
            data["name"] = self.name
        return data

    @classmethod
    def from_dict(cls, data: dict) -> "ClusteringSpec":
        return _dataclass_from_dict(cls, data, "clustering")


# ---------------------------------------------------------------------------
# The query and its result
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class ReliabilityQuery:
    """One reliability question, fully specified and picklable.

    ``metric`` selects what is computed:

    * ``"montecarlo"`` — sample ``n_samples`` failures and measure restart
      fraction + catastrophic rate (the batched
      ``montecarlo_scores`` pipeline, bit-identical draws under ``seed``);
    * ``"campaign"`` — one simulated failure campaign
      (:meth:`CampaignSimulator.run` under ``seed``), full cost breakdown;
    * ``"expected_waste"`` — mean waste fraction over ``n_campaigns``
      campaigns drawn serially from one generator (the historical
      ``expected_waste(workers=1)`` path, seed-for-seed identical);
    * ``"survival"`` — deterministic survival curve: for each cascade
      length ``f`` in ``sweep`` (default ``1..max_simultaneous``), the
      fraction of length-``f`` node runs the erasure configuration
      absorbs;
    * ``"waste_curve"`` — ``expected_waste`` swept over the checkpoint
      intervals in ``sweep``; every point draws from a fresh
      ``seed``-derived generator, so points are independent and the curve
      may be computed in chunks (streamed) without changing a bit.
    """

    metric: str
    machine: MachineSpec = MachineSpec()
    clustering: ClusteringSpec = ClusteringSpec()
    encoding: str = "rs"
    taxonomy: FailureTaxonomy = PAPER_TAXONOMY
    campaign: CampaignConfig = CampaignConfig()
    n_samples: int = 2000
    n_campaigns: int = 5
    seed: int = 0
    sweep: tuple[float, ...] = ()

    def __post_init__(self) -> None:
        if self.metric not in METRICS:
            raise ValueError(
                f"unknown metric {self.metric!r} (expected one of {METRICS})"
            )
        if self.encoding not in ENCODINGS:
            raise ValueError(
                f"unknown encoding {self.encoding!r} "
                f"(expected one of {tuple(ENCODINGS)})"
            )
        if self.metric in _CAMPAIGN_METRICS and self.encoding != "rs":
            raise ValueError(
                f"metric {self.metric!r} is priced by the campaign "
                "simulator, whose erasure configuration is fixed to "
                "Reed-Solomon; use encoding='rs'"
            )
        if not isinstance(self.seed, int) or isinstance(self.seed, bool):
            raise ValueError(f"seed must be an int, got {self.seed!r}")
        if self.n_samples < 1:
            raise ValueError(f"n_samples must be >= 1, got {self.n_samples}")
        if self.n_campaigns < 1:
            raise ValueError(
                f"n_campaigns must be >= 1, got {self.n_campaigns}"
            )
        object.__setattr__(
            self, "sweep", tuple(float(x) for x in self.sweep)
        )
        for x in self.sweep:
            if not math.isfinite(x) or x <= 0:
                raise ValueError(
                    f"sweep values must be finite and > 0, got {x!r}"
                )
        if self.metric == "waste_curve" and not self.sweep:
            raise ValueError(
                "waste_curve needs a sweep of checkpoint intervals (seconds)"
            )
        if self.metric == "survival":
            for x in self.sweep:
                if x != int(x):
                    raise ValueError(
                        f"survival sweeps over integer cascade lengths, "
                        f"got {x!r}"
                    )

    # -- cache / batch identity ------------------------------------------

    def table_key(self) -> str:
        """Canonical identity of the lookup-table bundle this query needs.

        Stable across processes (no salted ``hash()``) — the service
        routes queries to cache shards by hashing this string.
        """
        tax = self.taxonomy
        return "|".join(
            (
                f"m={self.machine.key()}",
                f"c={self.clustering.key()}",
                f"enc={self.encoding}",
                f"tax={tax.p_soft!r},{tax.p_multi!r},"
                f"{tax.escalation!r},{tax.max_simultaneous}",
            )
        )

    def batch_key(self) -> str | None:
        """Coalescing identity: queries with equal keys may be scored in
        one vectorized pass. Only Monte-Carlo queries coalesce (their
        per-event scoring is element-wise); ``None`` means "run alone"."""
        if self.metric != "montecarlo":
            return None
        return self.table_key()

    # -- wire format -------------------------------------------------------

    def to_dict(self) -> dict:
        tax, cfg = self.taxonomy, self.campaign
        return {
            "v": QUERY_VERSION,
            "metric": self.metric,
            "machine": self.machine.to_dict(),
            "clustering": self.clustering.to_dict(),
            "encoding": self.encoding,
            "taxonomy": {
                "p_soft": tax.p_soft,
                "p_multi": tax.p_multi,
                "escalation": tax.escalation,
                "max_simultaneous": tax.max_simultaneous,
            },
            "campaign": {
                "horizon_s": cfg.horizon_s,
                "checkpoint_interval_s": cfg.checkpoint_interval_s,
                "pfs_flush_every": cfg.pfs_flush_every,
                "checkpoint_gb_per_node": cfg.checkpoint_gb_per_node,
                "node_mtbf_s": cfg.node_mtbf_s,
            },
            "n_samples": self.n_samples,
            "n_campaigns": self.n_campaigns,
            "seed": self.seed,
            "sweep": list(self.sweep),
        }

    def to_json(self) -> str:
        return json.dumps(self.to_dict())

    @classmethod
    def from_dict(cls, data: dict) -> "ReliabilityQuery":
        if not isinstance(data, dict):
            raise ValueError(
                f"query must be an object, got {type(data).__name__}"
            )
        version = data.get("v")
        if version != QUERY_VERSION:
            raise ValueError(
                f"unsupported query version {version!r} "
                f"(this release speaks v={QUERY_VERSION})"
            )
        allowed = ["v"] + [f.name for f in fields(cls)]
        _check_unknown(data, "query", allowed)
        kwargs: dict = {
            k: data[k]
            for k in ("metric", "encoding", "n_samples", "n_campaigns", "seed")
            if k in data
        }
        if "machine" in data:
            kwargs["machine"] = MachineSpec.from_dict(data["machine"])
        if "clustering" in data:
            kwargs["clustering"] = ClusteringSpec.from_dict(data["clustering"])
        if "taxonomy" in data:
            kwargs["taxonomy"] = _dataclass_from_dict(
                FailureTaxonomy, data["taxonomy"], "taxonomy"
            )
        if "campaign" in data:
            kwargs["campaign"] = _dataclass_from_dict(
                CampaignConfig, data["campaign"], "campaign"
            )
        if "sweep" in data:
            kwargs["sweep"] = tuple(data["sweep"])
        return cls(**kwargs)

    @classmethod
    def from_json(cls, text: str | bytes) -> "ReliabilityQuery":
        try:
            data = json.loads(text)
        except json.JSONDecodeError as err:
            raise ValueError(f"query is not valid JSON: {err}") from None
        return cls.from_dict(data)


@dataclass(frozen=True)
class QueryResult:
    """Answer to one :class:`ReliabilityQuery`: named scalar values plus an
    optional ``(x, y)`` curve, hashable and picklable so equality means
    bit-equality."""

    metric: str
    clustering: str
    values: tuple[tuple[str, float], ...] = ()
    curve: tuple[tuple[float, float], ...] = ()

    def __post_init__(self) -> None:
        object.__setattr__(
            self,
            "values",
            tuple((str(k), float(v)) for k, v in self.values),
        )
        object.__setattr__(
            self,
            "curve",
            tuple((float(x), float(y)) for x, y in self.curve),
        )

    def value(self, name: str) -> float:
        """Look up one named scalar."""
        for key, val in self.values:
            if key == name:
                return val
        raise KeyError(
            f"no value {name!r} in {self.metric} result "
            f"(has {[k for k, _ in self.values]})"
        )

    def to_dict(self) -> dict:
        return {
            "v": QUERY_VERSION,
            "metric": self.metric,
            "clustering": self.clustering,
            "values": [[k, v] for k, v in self.values],
            "curve": [[x, y] for x, y in self.curve],
        }

    def to_json(self) -> str:
        return json.dumps(self.to_dict())

    @classmethod
    def from_dict(cls, data: dict) -> "QueryResult":
        if not isinstance(data, dict):
            raise ValueError(
                f"result must be an object, got {type(data).__name__}"
            )
        version = data.get("v")
        if version != QUERY_VERSION:
            raise ValueError(
                f"unsupported result version {version!r} "
                f"(this release speaks v={QUERY_VERSION})"
            )
        allowed = ["v"] + [f.name for f in fields(cls)]
        _check_unknown(data, "result", allowed)
        return cls(
            metric=data["metric"],
            clustering=data["clustering"],
            values=tuple((k, v) for k, v in data.get("values", ())),
            curve=tuple((x, y) for x, y in data.get("curve", ())),
        )

    @classmethod
    def from_json(cls, text: str | bytes) -> "QueryResult":
        try:
            data = json.loads(text)
        except json.JSONDecodeError as err:
            raise ValueError(f"result is not valid JSON: {err}") from None
        return cls.from_dict(data)


# ---------------------------------------------------------------------------
# Resolution: query → live tables
# ---------------------------------------------------------------------------


@dataclass
class QueryTables:
    """Live objects behind one ``table_key``: the machine, the clustering
    (whose ``_derived`` cache holds the restart/catastrophic lookup
    tables), and the analytic model. Built once per key and shared by
    every query that hashes to it."""

    machine: Machine
    clustering: Clustering
    model: CatastrophicModel

    @property
    def restart(self):
        """Restart-fraction lookup tables (cached on the clustering)."""
        from repro.core.tables import restart_tables

        return restart_tables(self.clustering, self.machine.placement)

    # -- per-event predictions (the fuzzer's oracle) ----------------------

    def predicted_restart_fraction(self, event: FailureEvent) -> float:
        """Fraction of processes the protocol restarts for one event."""
        clustering = self.clustering
        if event.kind == "soft":
            members = clustering.l1_members(clustering.l1_of(event.process))
            return members.size / clustering.n
        from repro.models.recovery_cost import restart_set_for_nodes

        restart = restart_set_for_nodes(
            clustering, self.machine.placement, event.nodes
        )
        return restart.size / clustering.n

    def predicted_catastrophic(self, event: FailureEvent) -> bool:
        """Whether the analytic model calls one event catastrophic."""
        return bool(self.model.event_is_catastrophic(self.clustering, event))

    def nbytes(self) -> int:
        """Bytes held by the derived lookup structures (recomputed on each
        call — the per-``f`` run caches grow as queries touch new cascade
        lengths; the service's byte-budget cache accounts with this)."""

        def _arrays(obj) -> int:
            total = 0
            for value in vars(obj).values():
                if isinstance(value, np.ndarray):
                    total += value.nbytes
                elif isinstance(value, dict):
                    total += sum(
                        v.nbytes
                        for v in value.values()
                        if isinstance(v, np.ndarray)
                    )
            return total

        total = 0
        for entry in self.clustering._derived.values():
            if isinstance(entry, np.ndarray):
                total += entry.nbytes
            elif hasattr(entry, "__dict__"):
                total += _arrays(entry)
        return total


def build_tables(query: ReliabilityQuery) -> QueryTables:
    """Materialize the table bundle for ``query`` (uncached — callers that
    answer more than one query should go through :func:`resolve_query` or
    the service's :class:`~repro.service.cache.TableCache`)."""
    machine = query.machine.build()
    clustering = query.clustering.build(machine)
    if clustering.n != machine.nranks:
        raise ValueError(
            f"clustering covers {clustering.n} processes, machine hosts "
            f"{machine.nranks}"
        )
    model = CatastrophicModel(
        machine.placement,
        taxonomy=query.taxonomy,
        tolerance=ENCODINGS[query.encoding],
    )
    tables = QueryTables(machine=machine, clustering=clustering, model=model)
    # Touch both table sets so the bundle is ready to score (and its
    # nbytes() reflects the real footprint from the first measurement).
    tables.restart
    model._tables(clustering)
    return tables


#: In-process resolve memo (count-bounded; the service layers its own
#: byte-budgeted, sharded cache on top of :func:`build_tables` instead).
_RESOLVE_LIMIT = 32
_resolve_cache: OrderedDict[str, QueryTables] = OrderedDict()
_resolve_lock = Lock()


def resolve_query(query: ReliabilityQuery) -> QueryTables:
    """Memoized :func:`build_tables`, keyed by ``query.table_key()``."""
    key = query.table_key()
    with _resolve_lock:
        tables = _resolve_cache.get(key)
        if tables is not None:
            _resolve_cache.move_to_end(key)
            return tables
    tables = build_tables(query)
    with _resolve_lock:
        _resolve_cache[key] = tables
        while len(_resolve_cache) > _RESOLVE_LIMIT:
            _resolve_cache.popitem(last=False)
    return tables


# ---------------------------------------------------------------------------
# Execution
# ---------------------------------------------------------------------------


def _montecarlo_parts(query: ReliabilityQuery, tables: QueryTables):
    """Draw the query's event batch (its own seeded generator — coalescing
    must not perturb any query's stream)."""
    gen = resolve_rng(query.seed)
    sampler = MonteCarloEstimator(tables.model, rng=gen)
    return sampler.sample_events(query.n_samples)


def _montecarlo_result(
    query: ReliabilityQuery,
    tables: QueryTables,
    restart_fractions: np.ndarray,
    catastrophic: int,
    soft: int,
) -> QueryResult:
    n = restart_fractions.size
    return QueryResult(
        metric="montecarlo",
        clustering=tables.clustering.name,
        values=(
            ("n_samples", float(n)),
            ("restart_fraction_mean", float(restart_fractions.mean())),
            ("restart_fraction_p95", float(np.quantile(restart_fractions, 0.95))),
            ("catastrophic_rate", catastrophic / n),
            ("soft_error_share", soft / n),
        ),
    )


def _run_montecarlo(
    query: ReliabilityQuery, tables: QueryTables
) -> QueryResult:
    batch = _montecarlo_parts(query, tables)
    fractions = tables.restart.batch_restart_fractions(batch)
    catastrophic = int(
        tables.model.events_are_catastrophic(tables.clustering, batch).sum()
    )
    return _montecarlo_result(
        query, tables, fractions, catastrophic, int(batch.is_soft.sum())
    )


def _simulator(query: ReliabilityQuery, tables: QueryTables) -> CampaignSimulator:
    return CampaignSimulator(
        tables.machine, query.campaign, taxonomy=query.taxonomy
    )


def _run_campaign(query: ReliabilityQuery, tables: QueryTables) -> QueryResult:
    result = _simulator(query, tables).run(tables.clustering, rng=query.seed)
    return QueryResult(
        metric="campaign",
        clustering=result.clustering,
        values=(
            ("n_failures", float(result.n_failures)),
            ("n_catastrophic", float(result.n_catastrophic)),
            ("checkpoint_overhead_s", result.checkpoint_overhead_s),
            ("rework_s", result.rework_s),
            ("restore_s", result.restore_s),
            ("catastrophic_penalty_s", result.catastrophic_penalty_s),
            ("total_waste_s", result.total_waste_s),
            ("waste_fraction", result.waste_fraction),
            ("efficiency", result.efficiency),
        ),
    )


def _serial_expected_waste(
    simulator: CampaignSimulator,
    clustering: Clustering,
    n_campaigns: int,
    seed: int,
) -> float:
    """The historical serial ``expected_waste`` path: ``n_campaigns``
    campaigns drawn sequentially from one shared generator — seed-for-seed
    identical to the deprecated loose-kwarg form with ``workers=1``."""
    gen = resolve_rng(seed)
    return float(
        np.mean(
            [
                simulator.run(clustering, rng=gen).waste_fraction
                for _ in range(n_campaigns)
            ]
        )
    )


def _run_expected_waste(
    query: ReliabilityQuery, tables: QueryTables
) -> QueryResult:
    waste = _serial_expected_waste(
        _simulator(query, tables),
        tables.clustering,
        query.n_campaigns,
        query.seed,
    )
    return QueryResult(
        metric="expected_waste",
        clustering=tables.clustering.name,
        values=(
            ("expected_waste", waste),
            ("efficiency", 1.0 - waste),
            ("n_campaigns", float(query.n_campaigns)),
        ),
    )


def _survival_lengths(query: ReliabilityQuery) -> tuple[int, ...]:
    if query.sweep:
        return tuple(int(x) for x in query.sweep)
    return tuple(range(1, query.taxonomy.max_simultaneous + 1))


def _run_survival(query: ReliabilityQuery, tables: QueryTables) -> QueryResult:
    lengths = _survival_lengths(query)
    fractions = tables.model.breaking_run_fractions(
        tables.clustering, list(lengths)
    )
    curve = tuple((float(f), 1.0 - fractions[f]) for f in lengths)
    return QueryResult(
        metric="survival",
        clustering=tables.clustering.name,
        values=(
            ("p_catastrophic", tables.model.probability(tables.clustering)),
        ),
        curve=curve,
    )


def _waste_curve_values(
    curve: tuple[tuple[float, float], ...]
) -> tuple[tuple[str, float], ...]:
    wastes = np.array([y for _, y in curve])
    best = int(np.argmin(wastes))
    return (
        ("best_checkpoint_interval_s", curve[best][0]),
        ("best_waste_fraction", curve[best][1]),
    )


def _run_waste_curve(
    query: ReliabilityQuery, tables: QueryTables
) -> QueryResult:
    curve = tuple(iter_waste_curve(query, tables))
    return QueryResult(
        metric="waste_curve",
        clustering=tables.clustering.name,
        values=_waste_curve_values(curve),
        curve=curve,
    )


def iter_waste_curve(query: ReliabilityQuery, tables: QueryTables):
    """Yield the waste curve point by point. Each point uses a *fresh*
    ``seed``-derived generator, so any chunking of the sweep produces
    bit-identical points — the property the streaming service relies on."""
    clustering = tables.clustering
    for interval in query.sweep:
        cfg = replace(query.campaign, checkpoint_interval_s=interval)
        simulator = CampaignSimulator(
            tables.machine, cfg, taxonomy=query.taxonomy
        )
        waste = _serial_expected_waste(
            simulator, clustering, query.n_campaigns, query.seed
        )
        yield (float(interval), waste)


_RUNNERS = {
    "montecarlo": _run_montecarlo,
    "campaign": _run_campaign,
    "expected_waste": _run_expected_waste,
    "survival": _run_survival,
    "waste_curve": _run_waste_curve,
}


def run_query(
    query: ReliabilityQuery, *, tables: QueryTables | None = None
) -> QueryResult:
    """Answer one query. ``tables`` short-circuits resolution when the
    caller already holds the bundle (the service's cache does)."""
    if tables is None:
        tables = resolve_query(query)
    return _RUNNERS[query.metric](query, tables)


def assemble_streamed(
    query: ReliabilityQuery, parts: list[QueryResult]
) -> QueryResult:
    """Reassemble chunked curve results into exactly what an unchunked
    :func:`run_query` would have returned."""
    if query.metric not in STREAMABLE_METRICS:
        raise ValueError(f"metric {query.metric!r} does not stream")
    curve = tuple(point for part in parts for point in part.curve)
    if query.metric == "waste_curve":
        values = _waste_curve_values(curve)
    else:
        values = parts[0].values
    return QueryResult(
        metric=query.metric,
        clustering=parts[0].clustering,
        values=values,
        curve=curve,
    )


# ---------------------------------------------------------------------------
# Batched execution with Monte-Carlo coalescing
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class BatchStats:
    """What one :func:`run_query_batch` call did."""

    queries: int = 0
    scoring_passes: int = 0
    coalesced: int = 0  # queries that shared a vectorized pass with others


def _concat_batches(batches):
    from repro.failures.events import EventBatch

    return EventBatch(
        is_soft=np.concatenate([b.is_soft for b in batches]),
        process=np.concatenate([b.process for b in batches]),
        run_start=np.concatenate([b.run_start for b in batches]),
        run_length=np.concatenate([b.run_length for b in batches]),
    )


def _run_coalesced(queries, tables: QueryTables) -> list[QueryResult]:
    """Score several same-table Monte-Carlo queries in one vectorized
    pass. Each query draws its own event batch from its own seed; the
    concatenated scoring is element-wise, so splitting the outputs back
    per query is bit-identical to running each alone."""
    batches = [_montecarlo_parts(q, tables) for q in queries]
    merged = _concat_batches(batches)
    fractions = tables.restart.batch_restart_fractions(merged)
    catastrophic = tables.model.events_are_catastrophic(
        tables.clustering, merged
    )
    results = []
    offset = 0
    for query, batch in zip(queries, batches):
        n = batch.n
        view = slice(offset, offset + n)
        results.append(
            _montecarlo_result(
                query,
                tables,
                fractions[view],
                int(catastrophic[view].sum()),
                int(batch.is_soft.sum()),
            )
        )
        offset += n
    return results


def run_query_batch(
    queries,
    *,
    resolver=None,
    return_exceptions: bool = False,
) -> tuple[list, BatchStats]:
    """Answer many queries, coalescing Monte-Carlo queries that share a
    table bundle into one scoring pass each.

    Returns ``(results, stats)`` with results in input order. With
    ``return_exceptions`` a failing query yields its exception object in
    place of a result (the service maps these to per-request errors);
    otherwise the first failure raises.
    """
    resolver = resolver or resolve_query
    queries = list(queries)
    results: list = [None] * len(queries)
    groups: dict[str, list[int]] = {}
    passes = 0
    coalesced = 0
    for i, query in enumerate(queries):
        key = query.batch_key()
        if key is None:
            passes += 1
            try:
                results[i] = run_query(query, tables=resolver(query))
            except Exception as err:  # noqa: BLE001 — per-query isolation
                if not return_exceptions:
                    raise
                results[i] = err
        else:
            groups.setdefault(key, []).append(i)
    for indices in groups.values():
        group = [queries[i] for i in indices]
        passes += 1
        if len(group) > 1:
            coalesced += len(group)
        try:
            group_results = _run_coalesced(group, resolver(group[0]))
        except Exception as err:  # noqa: BLE001 — per-query isolation
            if not return_exceptions:
                raise
            group_results = [err] * len(group)
        for i, result in zip(indices, group_results):
            results[i] = result
    return results, BatchStats(
        queries=len(queries), scoring_passes=passes, coalesced=coalesced
    )


# ---------------------------------------------------------------------------
# Conversion from the object-based API
# ---------------------------------------------------------------------------


def query_for(
    subject,
    clustering: Clustering,
    *,
    metric: str = "montecarlo",
    tolerance=None,
    encoding: str | None = None,
    **kwargs,
) -> ReliabilityQuery:
    """Build a query from live objects: a :class:`Scenario` or
    :class:`Machine` plus a :class:`Clustering`.

    ``tolerance`` accepts the analytic model's callables
    (``rs_half_tolerance``/``xor_tolerance``) and maps them to the wire
    encoding name; remaining ``kwargs`` go to :class:`ReliabilityQuery`.
    """
    if tolerance is not None and encoding is not None:
        raise TypeError("pass either tolerance or encoding, not both")
    if tolerance is not None:
        encoding = _ENCODING_OF_TOLERANCE.get(tolerance)
        if encoding is None:
            raise ValueError(
                "tolerance callable has no wire encoding name; known: "
                f"{sorted(_ENCODING_OF_TOLERANCE.values())}"
            )
    machine = getattr(subject, "machine", subject)
    taxonomy = getattr(subject, "taxonomy", kwargs.pop("taxonomy", PAPER_TAXONOMY))
    return ReliabilityQuery(
        metric=metric,
        machine=MachineSpec.from_machine(machine),
        clustering=ClusteringSpec.from_clustering(clustering),
        encoding=encoding or "rs",
        taxonomy=taxonomy,
        **kwargs,
    )
