"""Evaluation scenarios: machine + application + failure model in one bundle.

A :class:`Scenario` fixes everything the four-dimensional evaluation needs;
:func:`paper_scenario` builds the paper's §V configuration (64 TSUBAME2
nodes × 16 processes running the 1024-rank tsunami trace), and
:func:`reliability_scenario` the §III-C distribution-study shape (128 × 8).

The application communication matrix can come from the closed-form stencil
synthesis (fast, exact for the halo traffic — the default for parameter
sweeps) or from an actual traced discrete-event run (used by the Fig. 5
experiments and asserted equal to the synthetic one in the tests).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.apps.tsunami import TsunamiSimulation, paper_tsunami_config
from repro.clustering.partition import PartitionCost
from repro.commgraph.builder import graph_from_trace, node_graph
from repro.commgraph.graph import CommGraph
from repro.commgraph.synthetic import synthetic_stencil_matrix
from repro.failures.events import PAPER_TAXONOMY, FailureTaxonomy
from repro.machine.machine import Machine
from repro.machine.tsubame2 import reliability_study_machine, tsubame2_machine

#: Partition-cost weights calibrated so the §V node graph yields the paper's
#: 16 L1 clusters of 4 consecutive nodes (see DESIGN.md §5).
PAPER_PARTITION_COST = PartitionCost(w_logging=1.0, w_restart=8.0)


@dataclass(frozen=True)
class Scenario:
    """One fully-specified evaluation setting."""

    name: str
    machine: Machine
    graph: CommGraph
    taxonomy: FailureTaxonomy = PAPER_TAXONOMY
    partition_cost: PartitionCost = PAPER_PARTITION_COST
    iterations: int = 100

    @property
    def placement(self):
        """The machine's rank placement (application processes)."""
        return self.machine.placement

    def node_comm_graph(self) -> CommGraph:
        """Node-level collapse of the application graph (L1 partitioner input)."""
        return node_graph(self.graph, self.placement)


def paper_scenario(
    *, iterations: int = 100, traced: bool = False
) -> Scenario:
    """The §V evaluation scenario: 64 × 16 tsunami on TSUBAME2 parameters.

    ``traced=True`` runs the tsunami through the discrete-event engine to
    obtain the matrix (slower, byte-identical to the synthetic default).
    """
    machine = tsubame2_machine(64, 16)
    cfg = paper_tsunami_config(iterations=iterations)
    if traced:
        from repro.simmpi.engine import Engine
        from repro.simmpi.tracing import TraceRecorder

        sim = TsunamiSimulation(cfg)
        tracer = TraceRecorder(cfg.grid.nranks)
        Engine(cfg.grid.nranks, network=machine.network, tracer=tracer).run(
            sim.make_program()
        )
        graph = graph_from_trace(tracer)
    else:
        graph = synthetic_stencil_matrix(
            cfg.grid, iterations=iterations, nfields=3
        )
    return Scenario(
        name=f"tsunami-1024-{'traced' if traced else 'synthetic'}",
        machine=machine,
        graph=graph,
        iterations=iterations,
    )


def reliability_scenario(*, iterations: int = 100) -> Scenario:
    """The §III-C distribution study: 128 nodes × 8 processes."""
    machine = reliability_study_machine(128, 8)
    cfg = paper_tsunami_config(iterations=iterations)
    # Same 1024-process stencil; only the machine shape differs.
    graph = synthetic_stencil_matrix(cfg.grid, iterations=iterations, nfields=3)
    return Scenario(
        name="distribution-study-128x8",
        machine=machine,
        graph=graph,
        iterations=iterations,
    )
