"""Terminal rendering of the paper's figures: heatmaps, bars, radar.

The benchmark harness reproduces figures as text so results are reviewable
in CI logs without a display: Fig. 5a/5b as log-scale ASCII heatmaps,
Fig. 3/4 as labeled bar charts, Fig. 5c as a normalized radar table.
"""

from __future__ import annotations

import math
from collections.abc import Sequence

import numpy as np

#: Density ramp for heatmaps, darkest last (matches "dark blue = high").
HEAT_RAMP = " .:-=+*#%@"


def ascii_heatmap(
    matrix: np.ndarray,
    *,
    max_size: int = 64,
    log_scale: bool = True,
    ramp: str = HEAT_RAMP,
) -> str:
    """Render a byte matrix like Fig. 5a/5b (sender on x, receiver on y).

    Matrices larger than ``max_size`` are block-reduced (sums) first, which
    is what a pixel-downsampled scatter plot of the full 1024² matrix shows.
    """
    m = np.asarray(matrix, dtype=np.float64)
    if m.ndim != 2 or m.shape[0] != m.shape[1]:
        raise ValueError(f"heatmap needs a square matrix, got {m.shape}")
    n = m.shape[0]
    if n > max_size:
        factor = -(-n // max_size)
        padded_n = factor * max_size
        padded = np.zeros((padded_n, padded_n))
        padded[:n, :n] = m
        m = padded.reshape(max_size, factor, max_size, factor).sum(axis=(1, 3))
    values = m.copy()
    if log_scale:
        with np.errstate(divide="ignore"):
            values = np.where(values > 0, np.log10(values), -np.inf)
    finite = values[np.isfinite(values)]
    if finite.size == 0:
        lo, hi = 0.0, 1.0
    else:
        lo, hi = float(finite.min()), float(finite.max())
        if hi <= lo:
            hi = lo + 1.0
    lines = []
    for row in values:
        chars = []
        for v in row:
            if not math.isfinite(v):
                chars.append(ramp[0])
            else:
                level = (v - lo) / (hi - lo)
                idx = 1 + int(level * (len(ramp) - 2))
                chars.append(ramp[min(idx, len(ramp) - 1)])
        lines.append("".join(chars))
    return "\n".join(lines)


def ascii_bars(
    labels: Sequence[str],
    values: Sequence[float],
    *,
    width: int = 48,
    unit: str = "",
    log_scale: bool = False,
) -> str:
    """Horizontal bar chart with aligned labels (Fig. 3/4-style series)."""
    if len(labels) != len(values):
        raise ValueError("labels and values must have equal length")
    if not labels:
        return ""
    vals = np.asarray(values, dtype=np.float64)
    if log_scale:
        positive = vals[vals > 0]
        floor = math.log10(positive.min()) if positive.size else 0.0
        scaled = np.where(
            vals > 0, np.log10(np.maximum(vals, 1e-300)) - floor + 1e-9, 0.0
        )
    else:
        scaled = vals
    peak = scaled.max() if scaled.max() > 0 else 1.0
    label_w = max(len(str(l)) for l in labels)
    lines = []
    for label, value, s in zip(labels, vals, scaled):
        bar = "#" * max(0, int(round(width * s / peak)))
        lines.append(f"{str(label).rjust(label_w)} | {bar} {value:g}{unit}")
    return "\n".join(lines)


def radar_table(
    normalized: dict[str, dict[str, float]],
    *,
    axes: Sequence[str] = ("logging", "recovery", "encoding", "reliability"),
) -> str:
    """Fig. 5c as text: normalized scores, ≤ 1.0 means inside the baseline."""
    from repro.util.tables import AsciiTable

    table = AsciiTable(
        ["clustering"] + [f"{a} (≤1)" for a in axes] + ["inside baseline"],
        title="Fig. 5c — overall clustering comparison vs. baseline",
    )
    for name, scores in normalized.items():
        cells = [name]
        inside = True
        for axis in axes:
            v = scores[axis]
            cells.append("inf" if math.isinf(v) else f"{v:.3f}")
            inside = inside and v <= 1.0
        cells.append("yes" if inside else "NO")
        table.add_row(cells)
    return table.render()
