"""Precomputed lookup tables behind the batched evaluation engine.

The Monte-Carlo and campaign hot paths used to walk every sampled failure
event through per-event Python: rebuild the L2 membership matrix, re-derive
the erasure tolerances, and union L1 restart sets rank by rank. All of that
is a pure function of ``(clustering, placement)`` — so this module computes
it once and turns per-event scoring into array indexing:

* :class:`RestartTables` — the recovery-cost side: the rank → node vector,
  the L1-members-per-node count matrix and its node prefix sums, the
  per-rank soft-error restart fraction, and the restart fraction of every
  contiguous node run ``[start, start + f)`` (node events are always such
  runs, see :mod:`repro.failures.events`).
* :class:`CatastrophicTables` — the reliability side: the L2 membership
  matrix, the per-cluster erasure tolerance array, the per-rank
  soft-error catastrophe flags, and the catastrophic verdict of every
  contiguous node run.

Both are memoized on the clustering via its :meth:`Clustering.cached
<repro.clustering.base.Clustering.cached>` hook, keyed by placement
identity (and tolerance for the L2 side), so a Table II sweep that scores
four strategies on one machine builds each placement-derived table exactly
once; the placement's own rank → node vector is additionally cached on the
placement itself and shared across *all* clusterings.

Performance notes
-----------------
Building a table is ``O(nranks + nclusters × nnodes)`` — microseconds at
the paper's 1024-rank scale — and evaluating an event batch afterwards is
``O(n_events)`` NumPy indexing with zero per-event Python. Run
``benchmarks/record_bench.py`` to measure the scalar-vs-batched gap and
record it in ``BENCH_montecarlo.json``.

Reference path & invariants
---------------------------
Like the simmpi fast paths (:mod:`repro.simmpi.collectives`), the batched
evaluation keeps its slow reference in-tree: ``montecarlo_scores_scalar``
walks every sampled event through the original per-event models, and the
batched ``montecarlo_scores`` must agree with it seed for seed — same RNG
streams, same per-event restart fractions and catastrophic verdicts — so
the tables are an *encoding* of the models, never an approximation.
``tests/core/test_eval_tables.py`` asserts the equivalence (plus table
properties against brute-force recomputation), and
``benchmarks/record_bench.py`` re-asserts statistical agreement before
recording a rate. The scalar path is forced simply by calling it; there is
no observer that silently changes which path runs.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.clustering.base import Clustering
from repro.failures.events import EventBatch
from repro.machine.placement import Placement


def _count_matrix(labels: np.ndarray, node_of: np.ndarray, k: int, nnodes: int):
    """``M[c, node]`` = members of cluster ``c`` hosted on ``node``."""
    flat = np.bincount(labels * nnodes + node_of, minlength=k * nnodes)
    return flat.reshape(k, nnodes)


def _node_prefix(counts: np.ndarray) -> np.ndarray:
    """Prefix sums over the node axis, zero-padded for run differencing."""
    k = counts.shape[0]
    return np.concatenate(
        [np.zeros((k, 1), dtype=np.int64), np.cumsum(counts, axis=1)], axis=1
    )


def _run_lost(prefix: np.ndarray, nnodes: int, f: int) -> np.ndarray:
    """``lost[c, s]`` = members of cluster ``c`` on run ``[s, s + f)``."""
    starts = nnodes - f + 1
    return prefix[:, f : f + starts] - prefix[:, :starts]


def _batch_run_lookup(
    batch: EventBatch, soft_values: np.ndarray, run_table
) -> np.ndarray:
    """Gather one value per event: soft events index ``soft_values`` by
    victim rank, node events index ``run_table(f)`` by run start."""
    out = np.empty(batch.n, dtype=soft_values.dtype)
    soft = batch.is_soft
    out[soft] = soft_values[batch.process[soft]]
    node_idx = np.flatnonzero(~soft)
    lengths = batch.run_length[node_idx]
    starts = batch.run_start[node_idx]
    for f in np.unique(lengths):
        sel = lengths == f
        out[node_idx[sel]] = run_table(int(f))[starts[sel]]
    return out


class RestartTables:
    """Recovery-cost lookup structures for one (clustering, placement)."""

    def __init__(self, clustering: Clustering, placement: Placement):
        if clustering.n != placement.nranks:
            raise ValueError(
                f"clustering covers {clustering.n} processes, placement "
                f"{placement.nranks}"
            )
        self.clustering = clustering
        self.placement = placement
        self.node_of_rank = placement.node_array()
        self.l1_sizes = clustering.l1_sizes()
        self.l1_counts = _count_matrix(
            clustering.l1_labels,
            self.node_of_rank,
            clustering.n_l1_clusters,
            placement.nnodes,
        )
        self._l1_prefix = _node_prefix(self.l1_counts)
        self.ranks_per_node = np.bincount(
            self.node_of_rank, minlength=placement.nnodes
        )
        self._ranks_prefix = np.concatenate(
            [[0], np.cumsum(self.ranks_per_node)]
        )
        #: Restart fraction of a soft error at each rank: the rank's own L1
        #: cluster rolls back (§II-B2).
        self.soft_restart_fraction = (
            self.l1_sizes[clustering.l1_labels] / clustering.n
        )
        self._run_cache: dict[int, np.ndarray] = {}

    # -- contiguous node runs ------------------------------------------------

    def run_restart_fraction(self, f: int) -> np.ndarray:
        """Restart fraction of every length-``f`` run, indexed by start node.

        Entry ``s`` is the fraction of processes rolled back when nodes
        ``[s, s + f)`` fail simultaneously: the union of the L1 clusters
        with a member on the run. Cached per ``f``; treat as read-only.
        """
        f = min(int(f), self.placement.nnodes)
        cached = self._run_cache.get(f)
        if cached is None:
            lost = _run_lost(self._l1_prefix, self.placement.nnodes, f)
            counts = self.l1_sizes @ (lost > 0)
            cached = self._run_cache[f] = counts / self.clustering.n
        return cached

    @property
    def node_restart_fraction(self) -> np.ndarray:
        """Restart fraction of each single-node failure (``f = 1`` runs)."""
        return self.run_restart_fraction(1)

    def ranks_on_runs(self, starts: np.ndarray, lengths: np.ndarray) -> np.ndarray:
        """Number of ranks hosted on each run ``[start, start + length)``."""
        return self._ranks_prefix[starts + lengths] - self._ranks_prefix[starts]

    # -- batched event scoring -------------------------------------------------

    def batch_restart_fractions(self, batch: EventBatch) -> np.ndarray:
        """Restart fraction of every event in ``batch`` — pure indexing."""
        return _batch_run_lookup(
            batch, self.soft_restart_fraction, self.run_restart_fraction
        )


class CatastrophicTables:
    """Reliability lookup structures for one (clustering, placement, tolerance)."""

    def __init__(
        self,
        clustering: Clustering,
        placement: Placement,
        tolerance: Callable[[int], int],
    ):
        if clustering.n != placement.nranks:
            raise ValueError(
                f"clustering covers {clustering.n} processes, placement "
                f"{placement.nranks}"
            )
        self.clustering = clustering
        self.placement = placement
        self.tolerance = tolerance
        node_of = placement.node_array()
        self.l2_sizes = clustering.l2_sizes()
        #: ``membership[c, node]`` = members of L2 cluster ``c`` on ``node``.
        self.membership = _count_matrix(
            clustering.l2_labels,
            node_of,
            clustering.n_l2_clusters,
            placement.nnodes,
        )
        self._l2_prefix = _node_prefix(self.membership)
        #: Simultaneous member losses each L2 cluster's erasure code absorbs.
        self.tolerances = np.array(
            [tolerance(int(s)) for s in self.l2_sizes], dtype=np.int64
        )
        # A soft error is catastrophic only in a zero-tolerance cluster of
        # size >= 2 (a singleton rebuilds from its local copy).
        cluster_soft_cat = (self.tolerances < 1) & (self.l2_sizes > 1)
        self.soft_catastrophic = cluster_soft_cat[clustering.l2_labels]
        self._run_cache: dict[int, np.ndarray] = {}

    # -- contiguous node runs ------------------------------------------------

    def run_catastrophic(self, f: int) -> np.ndarray:
        """Catastrophic verdict of every length-``f`` run, by start node.

        Entry ``s`` is True when losing nodes ``[s, s + f)`` exceeds some L2
        cluster's tolerance. Cached per ``f``; treat as read-only.
        """
        f = min(int(f), self.placement.nnodes)
        cached = self._run_cache.get(f)
        if cached is None:
            lost = _run_lost(self._l2_prefix, self.placement.nnodes, f)
            cached = self._run_cache[f] = (
                lost > self.tolerances[:, None]
            ).any(axis=0)
        return cached

    def run_catastrophic_all(self, lengths) -> dict[int, np.ndarray]:
        """Verdicts for every run length in ``lengths`` in one batched pass.

        The per-``f`` tables differ only in which prefix-sum differences
        they take, so all missing lengths are built from the same cached
        prefix array with a single broadcasted gather — one
        ``(k, n_lengths, nnodes)`` difference — instead of one pass per
        cascade length. Results land in (and are served from) the same
        per-``f`` cache :meth:`run_catastrophic` uses.
        """
        nnodes = self.placement.nnodes
        wanted = sorted({min(int(f), nnodes) for f in lengths})
        missing = [f for f in wanted if f not in self._run_cache]
        if missing:
            fs = np.asarray(missing, dtype=np.int64)
            starts = np.arange(nnodes, dtype=np.int64)
            # ends[i, s] = start + f_i, clipped so padded (invalid) starts
            # read a harmless in-range column; they are sliced away below.
            ends = np.minimum(starts[None, :] + fs[:, None], nnodes)
            lost = self._l2_prefix[:, ends] - self._l2_prefix[:, None, starts]
            verdicts = (lost > self.tolerances[:, None, None]).any(axis=0)
            for i, f in enumerate(missing):
                self._run_cache[f] = verdicts[i, : nnodes - f + 1]
        return {f: self._run_cache[f] for f in wanted}

    def nodes_catastrophic(self, nodes) -> bool:
        """Whether losing an arbitrary node set exceeds some tolerance."""
        lost = self.membership[:, list(nodes)].sum(axis=1)
        return bool((lost > self.tolerances).any())

    # -- batched event scoring -------------------------------------------------

    def batch_catastrophic(self, batch: EventBatch) -> np.ndarray:
        """Catastrophic verdict of every event in ``batch`` — pure indexing."""
        return _batch_run_lookup(
            batch, self.soft_catastrophic, self.run_catastrophic
        )


# -- shared caches -----------------------------------------------------------


def restart_tables(clustering: Clustering, placement: Placement) -> RestartTables:
    """The (cached) :class:`RestartTables` of ``(clustering, placement)``.

    Memoized on the clustering, keyed by placement identity — the returned
    table keeps the placement alive, so the id key cannot be recycled while
    the cache entry exists.
    """
    return clustering.cached(
        ("restart_tables", id(placement)),
        lambda: RestartTables(clustering, placement),
    )


def catastrophic_tables(
    clustering: Clustering,
    placement: Placement,
    tolerance: Callable[[int], int],
) -> CatastrophicTables:
    """The (cached) :class:`CatastrophicTables` of the triple."""
    return clustering.cached(
        ("catastrophic_tables", id(placement), tolerance),
        lambda: CatastrophicTables(clustering, placement, tolerance),
    )
