"""One driver per figure/table of the paper's evaluation.

Each ``experiment_*`` function reproduces the data behind one exhibit and
returns a structured result with a ``render()`` for terminal display; the
benchmark harness (``benchmarks/``) wraps these, printing the same rows or
series the paper reports and asserting the *shape* claims (orderings,
crossovers, factors) hold.

All model-derived columns are served from the precomputed lookup tables of
:mod:`repro.core.tables`, cached per (clustering, placement): sweeping the
same strategies across figures reuses each table instead of recomputing it,
and the Monte-Carlo cross-check (:func:`experiment_montecarlo`) scores its
sampled event batches by pure array indexing.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.clustering.strategies import (
    consecutive_clustering,
    distributed_clustering,
)
from repro.core.evaluator import ClusteringEvaluator, EvaluationReport
from repro.core.plotting import ascii_heatmap, radar_table
from repro.core.scenario import (
    Scenario,
    paper_scenario,
    reliability_scenario,
)
from repro.failures.catastrophic import CatastrophicModel
from repro.models.encoding_time import EncodingTimeModel
from repro.models.recovery_cost import expected_restart_fraction
from repro.util.tables import AsciiTable
from repro.util.units import format_probability


# ---------------------------------------------------------------------------
# Fig. 3 — cluster-size study (consecutive-rank clusters)
# ---------------------------------------------------------------------------


@dataclass
class ClusterSizeStudy:
    """Fig. 3a/3b data: per consecutive-cluster size, the three costs."""

    sizes: list[int]
    logged_fraction: list[float]
    restart_fraction: list[float]
    encoding_s_per_gb: list[float]

    def sweet_spot_3a(self) -> int:
        """Size minimizing max(logging, restart) — the paper picks 32."""
        worst = [
            max(l, r) for l, r in zip(self.logged_fraction, self.restart_fraction)
        ]
        return self.sizes[int(np.argmin(worst))]

    def render(self, *, which: str = "3a") -> str:
        table = AsciiTable(
            ["cluster size", "logged %", "restart %", "encode s/GB"],
            title=f"Fig. {which} — cluster size study (consecutive ranks)",
        )
        for i, size in enumerate(self.sizes):
            table.add_row(
                [
                    size,
                    f"{100 * self.logged_fraction[i]:.1f}",
                    f"{100 * self.restart_fraction[i]:.2f}",
                    f"{self.encoding_s_per_gb[i]:.1f}",
                ]
            )
        return table.render()


def experiment_fig3(
    scenario: Scenario | None = None,
    *,
    sizes: tuple[int, ...] = (2, 4, 8, 16, 32, 64, 128, 256),
) -> ClusterSizeStudy:
    """Fig. 3a (recovery vs logging) + 3b (encoding vs logging) sweep."""
    scenario = scenario or paper_scenario()
    model = EncodingTimeModel()
    logged, restart, encode = [], [], []
    for size in sizes:
        clustering = consecutive_clustering(scenario.placement.nranks, size)
        logged.append(scenario.graph.logged_fraction(clustering.l1_labels))
        restart.append(
            expected_restart_fraction(clustering, scenario.placement)
        )
        encode.append(model.seconds_per_gb(size))
    return ClusterSizeStudy(list(sizes), logged, restart, encode)


# ---------------------------------------------------------------------------
# Fig. 4 — distribution study
# ---------------------------------------------------------------------------


@dataclass
class DistributionStudy:
    """Fig. 4a/4b/4c data: distributed vs non-distributed per cluster size."""

    sizes: list[int]
    reliability_non_distributed: list[float]
    reliability_distributed: list[float]
    logging_non_distributed: list[float]
    logging_distributed: list[float]
    restart_non_distributed: list[float]
    restart_distributed: list[float]

    def render(self) -> str:
        table = AsciiTable(
            [
                "size",
                "P[cat] non-dist",
                "P[cat] dist",
                "logged% non-dist",
                "logged% dist",
                "restart% non-dist",
                "restart% dist",
            ],
            title="Fig. 4 — distribution study",
        )
        for i, size in enumerate(self.sizes):
            table.add_row(
                [
                    size,
                    format_probability(self.reliability_non_distributed[i]),
                    format_probability(self.reliability_distributed[i]),
                    f"{100 * self.logging_non_distributed[i]:.1f}",
                    f"{100 * self.logging_distributed[i]:.1f}",
                    f"{100 * self.restart_non_distributed[i]:.1f}",
                    f"{100 * self.restart_distributed[i]:.1f}",
                ]
            )
        return table.render()


def experiment_fig4a(
    *, sizes: tuple[int, ...] = (4, 8, 16)
) -> DistributionStudy:
    """Fig. 4a: reliability on the §III-C machine (128 nodes × 8 procs)."""
    return _distribution_study(reliability_scenario(), sizes)


def experiment_fig4bc(
    scenario: Scenario | None = None,
    *,
    sizes: tuple[int, ...] = (4, 8, 16, 32),
) -> DistributionStudy:
    """Fig. 4b (logging) + 4c (restart) on the §V machine (64 × 16)."""
    return _distribution_study(scenario or paper_scenario(), sizes)


def _distribution_study(
    scenario: Scenario, sizes: tuple[int, ...]
) -> DistributionStudy:
    model = CatastrophicModel(scenario.placement, taxonomy=scenario.taxonomy)
    out = DistributionStudy(list(sizes), [], [], [], [], [], [])
    n = scenario.placement.nranks
    for size in sizes:
        non_dist = consecutive_clustering(n, size)
        dist = distributed_clustering(scenario.placement, size)
        out.reliability_non_distributed.append(model.probability(non_dist))
        out.reliability_distributed.append(model.probability(dist))
        out.logging_non_distributed.append(
            scenario.graph.logged_fraction(non_dist.l1_labels)
        )
        out.logging_distributed.append(
            scenario.graph.logged_fraction(dist.l1_labels)
        )
        out.restart_non_distributed.append(
            expected_restart_fraction(non_dist, scenario.placement)
        )
        out.restart_distributed.append(
            expected_restart_fraction(dist, scenario.placement)
        )
    return out


# ---------------------------------------------------------------------------
# Fig. 5a/5b — the traced §V execution with encoder processes
# ---------------------------------------------------------------------------


@dataclass
class TraceStudy:
    """Fig. 5a/5b data: full and zoomed communication matrices."""

    nranks: int
    bytes_matrix: np.ndarray
    kind_matrices: dict[str, np.ndarray]
    encoder_ranks: list[int]
    zoom_size: int = 68

    @property
    def zoom(self) -> np.ndarray:
        """Top-left ``zoom_size²`` corner (Fig. 5b's 68-rank view)."""
        return self.bytes_matrix[: self.zoom_size, : self.zoom_size]

    def render_full(self, *, max_size: int = 64) -> str:
        return (
            f"Fig. 5a — communication pattern ({self.nranks} ranks, log scale)\n"
            + ascii_heatmap(self.bytes_matrix, max_size=max_size)
        )

    def render_zoom(self) -> str:
        return (
            f"Fig. 5b — zoom on the first {self.zoom_size} ranks\n"
            + ascii_heatmap(self.zoom, max_size=self.zoom_size)
        )


def experiment_fig5ab(
    *,
    nodes: int = 64,
    app_per_node: int = 16,
    iterations: int = 100,
    checkpoint_every: int = 25,
) -> TraceStudy:
    """Run the full §V execution (app + encoders) and capture the trace.

    1088 simulated MPI ranks by default; pass smaller shapes for quick runs
    (the structural features are scale-invariant).
    """
    from repro.apps.tsunami import TsunamiConfig, TsunamiSimulation
    from repro.ftilib.tracesim import FTITraceConfig, make_fti_world_programs
    from repro.machine.placement import FTIPlacement
    from repro.simmpi.engine import Engine
    from repro.simmpi.tracing import TraceRecorder

    n_app = nodes * app_per_node
    px = 32 if n_app == 1024 else int(np.sqrt(n_app))
    py = n_app // px
    if px * py != n_app:
        raise ValueError(f"cannot build a 2-D grid over {n_app} app ranks")
    cfg = TsunamiConfig(
        px=px,
        py=py,
        nx=32 * px,
        ny=768 * py if n_app == 1024 else 32 * py,
        iterations=iterations,
        synthetic=True,
        allreduce_every=0,
    )
    sim = TsunamiSimulation(cfg)
    placement = FTIPlacement(nodes, app_per_node)
    programs = make_fti_world_programs(
        sim,
        placement,
        iterations=iterations,
        trace_cfg=FTITraceConfig(checkpoint_every=checkpoint_every),
    )
    tracer = TraceRecorder(placement.nranks, by_kind=True)
    Engine(placement.nranks, tracer=tracer).run(programs)
    return TraceStudy(
        nranks=placement.nranks,
        bytes_matrix=tracer.bytes_matrix,
        kind_matrices={k: v.copy() for k, v in tracer.kind_matrices.items()},
        encoder_ranks=placement.encoder_ranks(),
    )


# ---------------------------------------------------------------------------
# Fig. 5c + Table II — four-dimensional comparison
# ---------------------------------------------------------------------------


def experiment_table2(scenario: Scenario | None = None) -> EvaluationReport:
    """Table II: the four strategies scored on all four dimensions."""
    evaluator = ClusteringEvaluator(scenario or paper_scenario())
    return evaluator.evaluate_all()


def experiment_montecarlo(
    scenario: Scenario | None = None,
    *,
    n_samples: int = 2000,
    rng=0,
) -> str:
    """Monte-Carlo cross-validation of Table II's model-derived columns.

    Samples ``n_samples`` failures per strategy through the batched engine
    and renders analytic vs sampled restart fraction and catastrophic rate
    side by side. The analytic restart column is the full event-mixture
    expectation (soft + node, :func:`repro.core.montecarlo
    .analytic_restart_mixture`) so the two columns estimate the same
    quantity. Note the sampled side scores events against the same cached
    lookup tables the closed forms average over — agreement checks the
    probability-weighting of the models and the sampler, while the
    per-event equivalence tests (``tests/core/test_eval_tables.py``) pin
    the tables themselves to independent scalar predicates.
    """
    import numpy as np

    from repro.core.montecarlo import analytic_restart_mixture
    from repro.core.query import query_for, run_query

    scenario = scenario or paper_scenario()
    evaluator = ClusteringEvaluator(scenario)
    strategies = evaluator.paper_strategies()
    model = evaluator.catastrophic
    table = AsciiTable(
        [
            "clustering",
            "restart (analytic)",
            "restart (sampled)",
            "P[cat] (analytic)",
            "cat rate (sampled)",
        ],
        title=f"Monte-Carlo validation ({n_samples} failures per strategy)",
    )
    # Queries carry integer seeds on the wire, so derive one independent
    # child seed per strategy from the caller's master seed.
    seeds = [
        int(child.generate_state(1, dtype=np.uint64)[0] >> 1)
        for child in np.random.SeedSequence(rng).spawn(len(strategies))
    ]
    for clustering, seed in zip(strategies, seeds):
        query = query_for(
            scenario,
            clustering,
            n_samples=n_samples,
            seed=seed,
            tolerance=evaluator.tolerance,
        )
        mc = run_query(query)
        table.add_row(
            [
                clustering.name,
                f"{100 * analytic_restart_mixture(scenario, clustering):.2f}%",
                f"{100 * mc.value('restart_fraction_mean'):.2f}%",
                format_probability(model.probability(clustering)),
                format_probability(mc.value("catastrophic_rate")),
            ]
        )
    return table.render()


def experiment_fig5c(scenario: Scenario | None = None) -> str:
    """Fig. 5c: normalized (radar) comparison against the §III baseline."""
    report = experiment_table2(scenario)
    return radar_table(report.normalized())


# ---------------------------------------------------------------------------
# Table I — platform description
# ---------------------------------------------------------------------------


def experiment_table1() -> str:
    """Table I: the TSUBAME2 architecture parameters used by the models."""
    from repro.machine.tsubame2 import TSUBAME2

    spec = TSUBAME2
    table = AsciiTable(["parameter", "value"], title="Table I — TSUBAME2")
    rows = [
        ("Nodes", f"{spec.total_nodes} High BW Compute Nodes"),
        ("CPU cores/node", f"{spec.cores_per_node} (x2 hyperthreading)"),
        ("Memory", f"{spec.memory_GB} GB/node"),
        ("GPUs", f"{spec.gpus_per_node}/node ({spec.gpu_total} total)"),
        ("SSD", f"{spec.ssd_capacity_GB:.0f} GB @ {spec.ssd_write_MBps:.0f} MB/s write"),
        ("Network", f"dual rail QDR IB ({spec.ib_rail_GBps:.0f} GB/s x {spec.ib_rails})"),
        ("PFS write throughput", f"{spec.pfs_write_GBps:.0f} GB/s (Lustre)"),
        ("OS", spec.os_name),
    ]
    for k, v in rows:
        table.add_row([k, v])
    return table.render()
