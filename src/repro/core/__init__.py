"""High-level public API: scenarios, the four-dimensional evaluator, and
experiment drivers reproducing every figure and table of the paper."""

from repro.core.evaluator import ClusteringEvaluator, EvaluationReport
from repro.core.experiments import (
    ClusterSizeStudy,
    DistributionStudy,
    TraceStudy,
    experiment_fig3,
    experiment_fig4a,
    experiment_fig4bc,
    experiment_fig5ab,
    experiment_fig5c,
    experiment_table1,
    experiment_table2,
)
from repro.core.montecarlo import (
    MonteCarloScores,
    montecarlo_scores,
    validate_against_analytic,
)
from repro.core.plotting import ascii_bars, ascii_heatmap, radar_table
from repro.core.scenario import (
    PAPER_PARTITION_COST,
    Scenario,
    paper_scenario,
    reliability_scenario,
)

#: Backwards-friendly alias used in the README quickstart.
default_tsunami_scenario = paper_scenario

__all__ = [
    "ClusterSizeStudy",
    "ClusteringEvaluator",
    "DistributionStudy",
    "EvaluationReport",
    "MonteCarloScores",
    "PAPER_PARTITION_COST",
    "Scenario",
    "TraceStudy",
    "ascii_bars",
    "ascii_heatmap",
    "default_tsunami_scenario",
    "experiment_fig3",
    "experiment_fig4a",
    "experiment_fig4bc",
    "experiment_fig5ab",
    "experiment_fig5c",
    "experiment_table1",
    "experiment_table2",
    "montecarlo_scores",
    "paper_scenario",
    "radar_table",
    "reliability_scenario",
    "validate_against_analytic",
]
