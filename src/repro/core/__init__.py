"""High-level public API: scenarios, the four-dimensional evaluator, and
experiment drivers reproducing every figure and table of the paper."""

from repro.core.evaluator import ClusteringEvaluator, EvaluationReport
from repro.core.experiments import (
    ClusterSizeStudy,
    DistributionStudy,
    TraceStudy,
    experiment_fig3,
    experiment_fig4a,
    experiment_fig4bc,
    experiment_fig5ab,
    experiment_fig5c,
    experiment_montecarlo,
    experiment_table1,
    experiment_table2,
)
from repro.core.montecarlo import (
    MonteCarloScores,
    analytic_restart_mixture,
    montecarlo_scores,
    montecarlo_scores_scalar,
    validate_against_analytic,
)
from repro.core.query import (
    ClusteringSpec,
    MachineSpec,
    QueryResult,
    QueryTables,
    ReliabilityQuery,
    query_for,
    resolve_query,
    run_query,
    run_query_batch,
)
from repro.core.tables import (
    CatastrophicTables,
    RestartTables,
    catastrophic_tables,
    restart_tables,
)
from repro.core.plotting import ascii_bars, ascii_heatmap, radar_table
from repro.core.scenario import (
    PAPER_PARTITION_COST,
    Scenario,
    paper_scenario,
    reliability_scenario,
)

#: Backwards-friendly alias used in the README quickstart.
default_tsunami_scenario = paper_scenario

__all__ = [
    "CatastrophicTables",
    "ClusterSizeStudy",
    "ClusteringEvaluator",
    "ClusteringSpec",
    "DistributionStudy",
    "EvaluationReport",
    "MachineSpec",
    "MonteCarloScores",
    "PAPER_PARTITION_COST",
    "QueryResult",
    "QueryTables",
    "ReliabilityQuery",
    "RestartTables",
    "Scenario",
    "TraceStudy",
    "analytic_restart_mixture",
    "ascii_bars",
    "ascii_heatmap",
    "catastrophic_tables",
    "default_tsunami_scenario",
    "experiment_fig3",
    "experiment_fig4a",
    "experiment_fig4bc",
    "experiment_fig5ab",
    "experiment_fig5c",
    "experiment_montecarlo",
    "experiment_table1",
    "experiment_table2",
    "montecarlo_scores",
    "montecarlo_scores_scalar",
    "paper_scenario",
    "query_for",
    "radar_table",
    "reliability_scenario",
    "resolve_query",
    "restart_tables",
    "run_query",
    "run_query_batch",
    "validate_against_analytic",
]
