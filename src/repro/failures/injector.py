"""Failure injection for end-to-end protocol runs.

A :class:`FailureScenario` is a concrete schedule of failure events pinned
to application iterations (deterministic — protocol tests need exact
replays); :class:`FailureInjector` samples scenarios from the stochastic
models for Monte-Carlo experiments.

Scenario schedules are *normalized at construction*: the failures tuple is
sorted into execution order (iteration, then node events before soft
errors, then the event's node run / victim process), exact duplicate
``(iteration, event)`` pairs are rejected, and a node event naming a node
that an earlier event in the same schedule already killed is rejected —
a dead node cannot die again, and silently accepting the overlap would
make the schedule's cumulative damage ambiguous. The adversarial fuzzer
(:mod:`repro.fuzz`) leans on these invariants when it composes schedules
from independent actors via :meth:`FailureScenario.merge`.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.failures.catastrophic import MonteCarloEstimator
from repro.failures.events import FailureEvent, FailureTaxonomy, PAPER_TAXONOMY
from repro.machine.placement import Placement
from repro.util.rng import resolve_rng


@dataclass(frozen=True)
class ScheduledFailure:
    """A failure event pinned to an application iteration."""

    iteration: int
    event: FailureEvent

    def __post_init__(self) -> None:
        if self.iteration < 0:
            raise ValueError(f"iteration must be >= 0, got {self.iteration}")

    def sort_key(self) -> tuple:
        """Total order over scheduled failures: iteration, node events
        first, then the node run / victim process."""
        event = self.event
        return (
            self.iteration,
            0 if event.kind == "node" else 1,
            event.nodes,
            -1 if event.process is None else event.process,
        )


@dataclass(frozen=True)
class FailureScenario:
    """A deterministic, normalized schedule of failures for one run."""

    failures: tuple[ScheduledFailure, ...] = ()

    def __post_init__(self) -> None:
        normalized = tuple(sorted(self.failures, key=ScheduledFailure.sort_key))
        object.__setattr__(self, "failures", normalized)
        dead: set[int] = set()
        previous: ScheduledFailure | None = None
        for scheduled in normalized:
            if previous is not None and previous == scheduled:
                raise ValueError(
                    f"duplicate scheduled failure at iteration "
                    f"{scheduled.iteration}: {scheduled.event}"
                )
            previous = scheduled
            event = scheduled.event
            if event.kind != "node":
                continue
            overlap = dead.intersection(event.nodes)
            if overlap:
                raise ValueError(
                    f"iteration {scheduled.iteration}: node(s) "
                    f"{sorted(overlap)} are already dead — overlapping kills "
                    f"make the schedule's cumulative damage ambiguous"
                )
            dead.update(event.nodes)

    @classmethod
    def node_failure(cls, iteration: int, node: int) -> "FailureScenario":
        """Single whole-node failure at ``iteration`` (the common case)."""
        return cls(
            (ScheduledFailure(iteration, FailureEvent(kind="node", nodes=(node,))),)
        )

    @classmethod
    def multi_node_failure(
        cls, iteration: int, nodes: tuple[int, ...]
    ) -> "FailureScenario":
        """Correlated multi-node failure at ``iteration``."""
        return cls(
            (ScheduledFailure(iteration, FailureEvent(kind="node", nodes=nodes)),)
        )

    def merge(self, *others: "FailureScenario") -> "FailureScenario":
        """Union of this schedule and ``others``, re-normalized.

        The constructor re-validates the combined schedule, so merging
        schedules that duplicate an event or re-kill a dead node raises
        ``ValueError`` — the fuzzer's actor composer catches that and
        drops the conflicting fragment deterministically.
        """
        failures = self.failures
        for other in others:
            failures = failures + other.failures
        return FailureScenario(failures)

    def events_at(self, iteration: int) -> list[FailureEvent]:
        """Events scheduled for ``iteration``."""
        return [f.event for f in self.failures if f.iteration == iteration]

    def killed_nodes(self) -> set[int]:
        """All nodes killed by some event of this schedule."""
        return {
            node
            for f in self.failures
            if f.event.kind == "node"
            for node in f.event.nodes
        }

    @property
    def n_failures(self) -> int:
        """Total scheduled event count."""
        return len(self.failures)


class FailureInjector:
    """Samples random failure scenarios from the taxonomy."""

    def __init__(
        self,
        placement: Placement,
        *,
        taxonomy: FailureTaxonomy = PAPER_TAXONOMY,
        rng=None,
    ):
        self.placement = placement
        self.taxonomy = taxonomy
        self.rng = resolve_rng(rng)

    def sample_scenario(
        self, iterations: int, failure_rate_per_iteration: float
    ) -> FailureScenario:
        """Bernoulli failure draw per iteration with the given rate.

        Node events that would re-kill an already-dead node are dropped
        (their draws are still consumed, so the RNG stream — and hence
        every later event — is identical whether or not a drop occurs
        earlier): the normalized :class:`FailureScenario` constructor
        rejects overlapping kills, and a sampler must only emit valid
        schedules.
        """
        if not 0.0 <= failure_rate_per_iteration <= 1.0:
            raise ValueError("failure_rate_per_iteration must be in [0, 1]")
        from repro.failures.catastrophic import CatastrophicModel

        sampler = MonteCarloEstimator(
            CatastrophicModel(self.placement, taxonomy=self.taxonomy),
            rng=self.rng,
        )
        scheduled = []
        dead: set[int] = set()
        for it in range(iterations):
            if self.rng.random() < failure_rate_per_iteration:
                event = sampler.sample_event()
                if event.kind == "node":
                    if dead.intersection(event.nodes):
                        continue
                    dead.update(event.nodes)
                scheduled.append(ScheduledFailure(it, event))
        return FailureScenario(tuple(scheduled))
