"""Failure injection for end-to-end protocol runs.

A :class:`FailureScenario` is a concrete schedule of failure events pinned
to application iterations (deterministic — protocol tests need exact
replays); :class:`FailureInjector` samples scenarios from the stochastic
models for Monte-Carlo experiments.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.failures.catastrophic import MonteCarloEstimator
from repro.failures.events import FailureEvent, FailureTaxonomy, PAPER_TAXONOMY
from repro.machine.placement import Placement
from repro.util.rng import resolve_rng


@dataclass(frozen=True)
class ScheduledFailure:
    """A failure event pinned to an application iteration."""

    iteration: int
    event: FailureEvent

    def __post_init__(self) -> None:
        if self.iteration < 0:
            raise ValueError(f"iteration must be >= 0, got {self.iteration}")


@dataclass(frozen=True)
class FailureScenario:
    """A deterministic schedule of failures for one run."""

    failures: tuple[ScheduledFailure, ...] = ()

    @classmethod
    def node_failure(cls, iteration: int, node: int) -> "FailureScenario":
        """Single whole-node failure at ``iteration`` (the common case)."""
        return cls(
            (ScheduledFailure(iteration, FailureEvent(kind="node", nodes=(node,))),)
        )

    @classmethod
    def multi_node_failure(
        cls, iteration: int, nodes: tuple[int, ...]
    ) -> "FailureScenario":
        """Correlated multi-node failure at ``iteration``."""
        return cls(
            (ScheduledFailure(iteration, FailureEvent(kind="node", nodes=nodes)),)
        )

    def events_at(self, iteration: int) -> list[FailureEvent]:
        """Events scheduled for ``iteration``."""
        return [f.event for f in self.failures if f.iteration == iteration]

    @property
    def n_failures(self) -> int:
        """Total scheduled event count."""
        return len(self.failures)


class FailureInjector:
    """Samples random failure scenarios from the taxonomy."""

    def __init__(
        self,
        placement: Placement,
        *,
        taxonomy: FailureTaxonomy = PAPER_TAXONOMY,
        rng=None,
    ):
        self.placement = placement
        self.taxonomy = taxonomy
        self.rng = resolve_rng(rng)

    def sample_scenario(
        self, iterations: int, failure_rate_per_iteration: float
    ) -> FailureScenario:
        """Bernoulli failure draw per iteration with the given rate."""
        if not 0.0 <= failure_rate_per_iteration <= 1.0:
            raise ValueError("failure_rate_per_iteration must be in [0, 1]")
        from repro.failures.catastrophic import CatastrophicModel

        sampler = MonteCarloEstimator(
            CatastrophicModel(self.placement, taxonomy=self.taxonomy),
            rng=self.rng,
        )
        scheduled = []
        for it in range(iterations):
            if self.rng.random() < failure_rate_per_iteration:
                scheduled.append(ScheduledFailure(it, sampler.sample_event()))
        return FailureScenario(tuple(scheduled))
