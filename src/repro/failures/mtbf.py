"""Failure-arrival processes: when do failures strike a running job?

Used by the end-to-end protocol simulations (inject a failure at a sampled
time) and by the Daly-interval extension model. Failure inter-arrival times
are exponential with the system MTBF — the standard assumption of the
checkpoint-scheduling literature the paper builds on [21], [10].
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.util.rng import resolve_rng
from repro.util.validation import check_positive


@dataclass(frozen=True)
class MTBFModel:
    """System-level mean time between failures.

    ``node_mtbf_s`` is the per-node MTBF; with ``nnodes`` independent nodes
    the system MTBF shrinks proportionally — the extreme-scale squeeze the
    paper opens with.
    """

    node_mtbf_s: float
    nnodes: int

    def __post_init__(self) -> None:
        check_positive("node_mtbf_s", self.node_mtbf_s)
        if self.nnodes < 1:
            raise ValueError(f"nnodes must be >= 1, got {self.nnodes}")

    @property
    def system_mtbf_s(self) -> float:
        """System MTBF = node MTBF / node count."""
        return self.node_mtbf_s / self.nnodes

    def failure_times(self, horizon_s: float, rng=None) -> np.ndarray:
        """Sample failure instants in ``[0, horizon_s)`` (Poisson process)."""
        check_positive("horizon_s", horizon_s)
        gen = resolve_rng(rng)
        times = []
        t = 0.0
        scale = self.system_mtbf_s
        while True:
            t += gen.exponential(scale)
            if t >= horizon_s:
                break
            times.append(t)
        return np.array(times)

    def expected_failures(self, horizon_s: float) -> float:
        """Expected number of failures over ``horizon_s``."""
        return horizon_s / self.system_mtbf_s
