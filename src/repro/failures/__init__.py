"""Failure and reliability models: taxonomy, catastrophic probability,
MTBF arrival processes, deterministic and random failure injection."""

from repro.failures.catastrophic import (
    CatastrophicModel,
    MonteCarloEstimator,
    rs_half_tolerance,
    xor_tolerance,
)
from repro.failures.events import (
    PAPER_TAXONOMY,
    EventBatch,
    FailureEvent,
    FailureTaxonomy,
)
from repro.failures.injector import (
    FailureInjector,
    FailureScenario,
    ScheduledFailure,
)
from repro.failures.mtbf import MTBFModel

__all__ = [
    "CatastrophicModel",
    "EventBatch",
    "FailureEvent",
    "FailureInjector",
    "FailureScenario",
    "FailureTaxonomy",
    "MTBFModel",
    "MonteCarloEstimator",
    "PAPER_TAXONOMY",
    "ScheduledFailure",
    "rs_half_tolerance",
    "xor_tolerance",
]
