"""Failure-event taxonomy.

The paper's reliability reasoning rests on two observations:

* "Most failures in current supercomputers affect only a small fraction of
  the system, where the affected part is often one single node or a small
  set of nodes" (§II-B1);
* correlated failures exist — "two nodes sharing a power supply should be
  located in the same cluster" (§II-C2).

We therefore model a failure event as either a **soft error** (one process,
recoverable from its local checkpoint copy) or a **node event** killing a
*contiguous run* of ``f ≥ 1`` nodes — contiguity is the spatial-correlation
model (shared power supplies, chassis, switches are adjacency-local), and
``f`` follows a sharply decaying distribution parameterized below.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.util.validation import check_in_range, check_probability


@dataclass(frozen=True)
class FailureEvent:
    """One concrete failure occurrence."""

    kind: str  # "soft" | "node"
    nodes: tuple[int, ...] = ()
    process: int | None = None  # for soft errors
    time: float = 0.0

    def __post_init__(self) -> None:
        if self.kind not in ("soft", "node"):
            raise ValueError(f"unknown failure kind {self.kind!r}")
        if self.kind == "node" and not self.nodes:
            raise ValueError("node events must name at least one node")
        if self.kind == "soft" and self.process is None:
            raise ValueError("soft errors must name a process")

    @property
    def n_nodes(self) -> int:
        """Number of nodes wiped by this event (0 for soft errors)."""
        return len(self.nodes)


@dataclass(frozen=True)
class EventBatch:
    """``n`` sampled failure events in struct-of-arrays form.

    The batched Monte-Carlo path (:meth:`MonteCarloEstimator.sample_events
    <repro.failures.catastrophic.MonteCarloEstimator.sample_events>`) draws
    all events with a handful of NumPy calls and returns them as parallel
    arrays so downstream scoring is pure array indexing. Node events are
    always contiguous runs ``[run_start, run_start + run_length)`` — the
    taxonomy's spatial-correlation model — which is what lets the lookup
    tables precompute every possible run once.

    ``process`` is only meaningful where ``is_soft``; ``run_start`` /
    ``run_length`` only where ``~is_soft``.
    """

    is_soft: np.ndarray  # (n,) bool
    process: np.ndarray  # (n,) int64 — soft-error victim rank
    run_start: np.ndarray  # (n,) int64 — first node of the failed run
    run_length: np.ndarray  # (n,) int64 — nodes wiped by the event

    def __post_init__(self) -> None:
        n = self.is_soft.shape[0]
        for name in ("process", "run_start", "run_length"):
            if getattr(self, name).shape != (n,):
                raise ValueError(f"{name} must have shape ({n},)")

    @property
    def n(self) -> int:
        """Number of events in the batch."""
        return int(self.is_soft.size)

    def event(self, i: int) -> FailureEvent:
        """Materialize event ``i`` as a scalar :class:`FailureEvent`."""
        if self.is_soft[i]:
            return FailureEvent(kind="soft", process=int(self.process[i]))
        start, length = int(self.run_start[i]), int(self.run_length[i])
        return FailureEvent(kind="node", nodes=tuple(range(start, start + length)))

    def events(self) -> list[FailureEvent]:
        """All events as scalar objects (tests and the reference path)."""
        return [self.event(i) for i in range(self.n)]


@dataclass(frozen=True)
class FailureTaxonomy:
    """Probabilistic shape of failure events.

    Parameters (defaults calibrated in DESIGN.md §5 so Table II's
    reliability column is reproduced):

    p_soft:
        Probability a failure is a single-process soft error (0.05: the
        complement 0.95 is exactly the catastrophic probability the paper
        reports for the non-distributed size-guided clustering, which dies
        on every node event).
    p_multi:
        Probability that a node event kills ≥ 2 nodes simultaneously.
    escalation:
        Conditional probability P(≥ j+1 nodes | ≥ j nodes) for j ≥ 2 —
        geometric tail of cascade sizes.
    max_simultaneous:
        Truncation of the cascade-size distribution.
    """

    p_soft: float = 0.05
    p_multi: float = 2.0e-4
    escalation: float = 0.03
    max_simultaneous: int = 12

    def __post_init__(self) -> None:
        check_probability("p_soft", self.p_soft)
        check_probability("p_multi", self.p_multi)
        check_in_range("escalation", self.escalation, 0.0, 1.0, inclusive=False)
        if self.max_simultaneous < 1:
            raise ValueError("max_simultaneous must be >= 1")

    def node_count_pmf(self) -> np.ndarray:
        """P(node event kills exactly f nodes), index 0 ↔ f = 1.

        Sums to 1; the truncated tail mass is assigned to the maximum.
        Cached after the first call (the taxonomy is frozen); treat the
        returned array as read-only — the batched samplers index it on
        every draw.
        """
        cached = getattr(self, "_pmf", None)
        if cached is not None:
            return cached
        fmax = self.max_simultaneous
        pmf = np.zeros(fmax)
        pmf[0] = 1.0 - self.p_multi
        tail = self.p_multi  # P(f >= 2)
        for j in range(2, fmax):
            pmf[j - 1] = tail * (1.0 - self.escalation)
            tail *= self.escalation
        pmf[fmax - 1] = tail
        object.__setattr__(self, "_pmf", pmf)
        return pmf

    def event_probabilities(self) -> dict[str, float]:
        """Top-level mixture: P(soft), P(node event)."""
        return {"soft": self.p_soft, "node": 1.0 - self.p_soft}


#: Taxonomy used by the paper-reproduction experiments.
PAPER_TAXONOMY = FailureTaxonomy()
