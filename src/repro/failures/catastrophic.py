"""Catastrophic-failure probability: the paper's reliability dimension.

This is our implementation of the "catastrophic failure model presented in
[3]" (§III-C): a failure is *catastrophic* (unrecoverable from node-local
storage + erasure codes) when some L2 encoding cluster loses more members
than its parity can rebuild; the execution must then fall back to a much
older PFS checkpoint or is lost.

The model composes:

* the :class:`~repro.failures.events.FailureTaxonomy` (soft vs node events,
  cascade-size distribution);
* spatial correlation — a node event kills a contiguous run of nodes
  (shared power supply / chassis locality, §II-C2);
* the erasure tolerance ``m(s)`` of an L2 cluster of size ``s`` — FTI's
  Reed–Solomon configuration tolerates the loss of half a group, so the
  default is ``m = floor(s/2)``; pass ``xor_tolerance`` for XOR parity
  (``m = 1``).

Because cascades are contiguous runs over a small node count, the
probability is computed *exactly* by enumerating run positions —
:class:`MonteCarloEstimator` cross-validates the closed form by sampling.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.clustering.base import Clustering
from repro.failures.events import (
    EventBatch,
    FailureEvent,
    FailureTaxonomy,
    PAPER_TAXONOMY,
)
from repro.machine.placement import Placement
from repro.util.rng import resolve_rng


def rs_half_tolerance(size: int) -> int:
    """FTI-style Reed–Solomon tolerance: half the cluster may disappear."""
    return size // 2

def xor_tolerance(size: int) -> int:
    """XOR parity tolerance: exactly one member may disappear."""
    return 1 if size >= 2 else 0


class CatastrophicModel:
    """Exact catastrophic probability of a clustering on one machine.

    Parameters
    ----------
    placement:
        rank ↔ node mapping of the application processes.
    taxonomy:
        Failure-event distribution (defaults to the calibrated paper one).
    tolerance:
        Map from L2 cluster size to the number of simultaneous member
        losses the erasure code absorbs.
    """

    def __init__(
        self,
        placement: Placement,
        *,
        taxonomy: FailureTaxonomy = PAPER_TAXONOMY,
        tolerance: Callable[[int], int] = rs_half_tolerance,
    ):
        self.placement = placement
        self.taxonomy = taxonomy
        self.tolerance = tolerance

    # -- core predicate ---------------------------------------------------

    def _tables(self, clustering: Clustering):
        """Cached lookup tables for ``clustering`` under this model's
        placement and tolerance (see :mod:`repro.core.tables`)."""
        # Imported lazily: repro.core's package init imports back into
        # repro.failures, so a module-level import would cycle.
        from repro.core.tables import catastrophic_tables

        return catastrophic_tables(clustering, self.placement, self.tolerance)

    def _membership_matrix(self, clustering: Clustering) -> np.ndarray:
        """``M[c, node]`` = members of L2 cluster ``c`` hosted on ``node``.

        Precomputed once per (clustering, placement, tolerance) and cached
        on the clustering — treat as read-only.
        """
        return self._tables(clustering).membership

    def event_is_catastrophic(
        self, clustering: Clustering, event: FailureEvent
    ) -> bool:
        """Whether one concrete event exceeds some cluster's tolerance."""
        tables = self._tables(clustering)
        if event.kind == "soft":
            # A single process loss is always rebuildable (local copy and,
            # failing that, one erasure within any cluster of size >= 2).
            return bool(tables.soft_catastrophic[event.process])
        return tables.nodes_catastrophic(event.nodes)

    def events_are_catastrophic(
        self, clustering: Clustering, batch: EventBatch
    ) -> np.ndarray:
        """Vectorized :meth:`event_is_catastrophic` over a sampled batch."""
        return self._tables(clustering).batch_catastrophic(batch)

    # -- exact probability --------------------------------------------------

    def breaking_run_fraction(self, clustering: Clustering, f: int) -> float:
        """Fraction of length-``f`` contiguous node runs that are catastrophic."""
        return float(self._tables(clustering).run_catastrophic(f).mean())

    def breaking_run_fractions(
        self, clustering: Clustering, lengths
    ) -> dict[int, float]:
        """:meth:`breaking_run_fraction` for many cascade lengths at once.

        All missing run tables are built from the cached node prefix sums
        in one broadcasted pass (:meth:`repro.core.tables.CatastrophicTables
        .run_catastrophic_all`) instead of one pass per length; lengths are
        clamped to the node count exactly like the scalar entry point.
        """
        tables = self._tables(clustering).run_catastrophic_all(lengths)
        nnodes = self.placement.nnodes
        return {
            int(f): float(tables[min(int(f), nnodes)].mean()) for f in lengths
        }

    def probability(self, clustering: Clustering) -> float:
        """P(catastrophic | a failure event occurs) — Table II's column.

        The sweep over cascade lengths is batched: every per-``f`` run
        table the pmf touches is derived in a single prefix-sum pass.
        """
        if clustering.n != self.placement.nranks:
            raise ValueError(
                f"clustering covers {clustering.n} processes, placement "
                f"{self.placement.nranks}"
            )
        pmf = self.taxonomy.node_count_pmf()
        p_node = 1.0 - self.taxonomy.p_soft
        lengths = [idx + 1 for idx, p_f in enumerate(pmf) if p_f != 0.0]
        fractions = self.breaking_run_fractions(clustering, lengths)
        total = 0.0
        for f in lengths:
            total += pmf[f - 1] * fractions[f]
        return p_node * total


class MonteCarloEstimator:
    """Sampling cross-check of :class:`CatastrophicModel`.

    Draws failure events from the same taxonomy/spatial model and reports
    the empirical catastrophic rate — the property tests assert it agrees
    with the closed form within sampling error.
    """

    def __init__(self, model: CatastrophicModel, rng=None):
        self.model = model
        self.rng = resolve_rng(rng)

    def sample_event(self) -> FailureEvent:
        """Draw one failure event (the scalar reference path)."""
        taxonomy = self.model.taxonomy
        placement = self.model.placement
        if self.rng.random() < taxonomy.p_soft:
            return FailureEvent(
                kind="soft", process=int(self.rng.integers(placement.nranks))
            )
        pmf = taxonomy.node_count_pmf()
        f = int(self.rng.choice(len(pmf), p=pmf / pmf.sum())) + 1
        f = min(f, placement.nnodes)
        start = int(self.rng.integers(placement.nnodes - f + 1))
        return FailureEvent(kind="node", nodes=tuple(range(start, start + f)))

    def sample_events(self, n: int) -> EventBatch:
        """Draw ``n`` failure events with a fixed number of NumPy calls.

        Every event kind, victim process, cascade length and run start is
        drawn as one array — no per-event Python. The batch draws each
        quantity for all ``n`` events (soft events simply ignore their run
        columns and vice versa), so the RNG stream differs from ``n`` calls
        to :meth:`sample_event`; under a fixed seed the two paths are
        *statistically* equivalent, which the equivalence tests assert.
        """
        if n < 1:
            raise ValueError("n must be >= 1")
        taxonomy = self.model.taxonomy
        placement = self.model.placement
        is_soft = self.rng.random(n) < taxonomy.p_soft
        process = self.rng.integers(placement.nranks, size=n)
        pmf = taxonomy.node_count_pmf()
        lengths = self.rng.choice(len(pmf), size=n, p=pmf / pmf.sum()) + 1
        lengths = np.minimum(lengths, placement.nnodes)
        starts = self.rng.integers(placement.nnodes - lengths + 1)
        return EventBatch(
            is_soft=is_soft,
            process=process.astype(np.int64),
            run_start=starts.astype(np.int64),
            run_length=lengths.astype(np.int64),
        )

    def estimate(self, clustering: Clustering, n_samples: int = 10_000) -> float:
        """Empirical P(catastrophic) over ``n_samples`` sampled events."""
        if n_samples < 1:
            raise ValueError("n_samples must be >= 1")
        batch = self.sample_events(n_samples)
        hits = self.model.events_are_catastrophic(clustering, batch)
        return float(hits.mean())
