"""Legacy setup shim.

The offline CI image has setuptools but no ``wheel``, which breaks PEP-517
editable installs; keeping a setup.py lets ``pip install -e .`` fall back to
``setup.py develop``. All metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()
