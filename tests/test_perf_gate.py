"""Perf-trajectory gate: tier-1 re-measures the recorded hot paths.

``benchmarks/record_bench.py`` appends one record per PR to
``BENCH_montecarlo.json`` / ``BENCH_simmpi.json``, including small ``gate``
probes measured on the same machine class that runs the tests. These tests
re-run exactly those probes and fail when the live rate drops below half
the last recorded one — a >2× regression of either hot path breaks verify
instead of silently bending the in-tree curve.

The 2× slack absorbs timer noise and container jitter; the probes take
well under a second each. Tests skip cleanly when an artifact has not been
recorded yet (fresh clones, partial checkouts), and on CI runners
(``CI`` set without ``PERF_GATE``): the recorded baselines describe the
machine class that records the trajectory, not arbitrary shared runners —
a hosted machine half as fast would fail every push with no code change.
Set ``PERF_GATE=1`` to force the gates anywhere.
"""

import json
import os
from pathlib import Path

import pytest

ROOT = Path(__file__).resolve().parent.parent
REGRESSION_FACTOR = 2.0

pytestmark = pytest.mark.skipif(
    bool(os.environ.get("CI")) and not os.environ.get("PERF_GATE"),
    reason="perf-gate baselines are recorded on the dev machine class; "
    "set PERF_GATE=1 to run them on CI anyway",
)


def _load_bench(module_path: Path):
    import importlib.util

    spec = importlib.util.spec_from_file_location("record_bench", module_path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


@pytest.fixture(scope="module")
def record_bench():
    path = ROOT / "benchmarks" / "record_bench.py"
    if not path.exists():
        pytest.skip("benchmarks/record_bench.py not present")
    return _load_bench(path)


def _last_record(artifact: Path) -> dict:
    if not artifact.exists():
        pytest.skip(f"{artifact.name} not recorded yet")
    trajectory = json.loads(artifact.read_text())
    if not trajectory:
        pytest.skip(f"{artifact.name} is empty")
    return trajectory[-1]


class TestPerfGate:
    def test_batched_montecarlo_not_regressed(self, record_bench):
        record = _last_record(ROOT / "BENCH_montecarlo.json")
        recorded = record["montecarlo"].get(
            "gate_batched_samples_per_s",
            record["montecarlo"]["batched_samples_per_s"],
        )
        current = record_bench.measure_batched_montecarlo(n_samples=2000)
        floor = recorded / REGRESSION_FACTOR
        assert current >= floor, (
            f"batched Monte-Carlo at {current:.0f} samples/s, below "
            f"{floor:.0f} (last recorded {recorded}, {REGRESSION_FACTOR}x slack)"
        )

    def test_simmpi_fast_path_not_regressed(self, record_bench):
        record = _last_record(ROOT / "BENCH_simmpi.json")
        gate = record["simmpi"]["gate"]
        current = record_bench.measure_simmpi(
            nodes=gate["nodes"],
            app_per_node=gate["app_per_node"],
            iterations=gate["iterations"],
        )
        floor = gate["ranks_per_s"] / REGRESSION_FACTOR
        assert current >= floor, (
            f"simmpi fast path at {current:.0f} rank-iters/s, below "
            f"{floor:.0f} (last recorded {gate['ranks_per_s']}, "
            f"{REGRESSION_FACTOR}x slack)"
        )

    def test_simmpi_split_fast_path_not_regressed(self, record_bench):
        record = _last_record(ROOT / "BENCH_simmpi.json")
        gate = record["simmpi"]["gate"]
        recorded = gate.get("split_ranks_per_s")
        if recorded is None:
            pytest.skip("split gate not recorded yet")
        current = record_bench.measure_simmpi_split()
        floor = recorded / REGRESSION_FACTOR
        assert current >= floor, (
            f"split-communicator fast path at {current:.0f} rank-iters/s, "
            f"below {floor:.0f} (last recorded {recorded}, "
            f"{REGRESSION_FACTOR}x slack)"
        )

    def test_fig5_kernel_path_not_regressed(self, record_bench):
        record = _last_record(ROOT / "BENCH_simmpi.json")
        gate = record["simmpi"]["gate"]
        recorded = gate.get("fig5_kernel_ranks_per_s")
        if recorded is None:
            pytest.skip("kernel gate not recorded yet")
        current = record_bench.measure_simmpi(
            nodes=gate["nodes"],
            app_per_node=gate["app_per_node"],
            iterations=gate["iterations"],
            use_kernels=True,
        )
        floor = recorded / REGRESSION_FACTOR
        assert current >= floor, (
            f"kernelized fig5 path at {current:.0f} rank-iters/s, below "
            f"{floor:.0f} (last recorded {recorded}, "
            f"{REGRESSION_FACTOR}x slack)"
        )

    def test_p2p_wave_path_not_regressed(self, record_bench):
        record = _last_record(ROOT / "BENCH_simmpi.json")
        gate = record["simmpi"]["gate"]
        recorded = gate.get("p2p_wave_msgs_per_s")
        if recorded is None:
            pytest.skip("p2p wave gate not recorded yet")
        current = record_bench.measure_p2p_wave()
        floor = recorded / REGRESSION_FACTOR
        assert current >= floor, (
            f"p2p wave path at {current:.0f} msgs/s, below {floor:.0f} "
            f"(last recorded {recorded}, {REGRESSION_FACTOR}x slack)"
        )
