"""Property-based checkpointer tests: recovery under random loss patterns."""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.clustering import distributed_clustering
from repro.ftilib import MultilevelCheckpointer, RestoreError
from repro.machine import Machine


def build(nnodes=8, ppn=2, cluster_size=4):
    machine = Machine(nnodes, ppn)
    clustering = distributed_clustering(machine.placement, cluster_size)
    ck = MultilevelCheckpointer(machine, clustering)
    return machine, clustering, ck


def random_state(rank, rng):
    return {
        "field": rng.random((rng.integers(1, 6), rng.integers(1, 6))),
        "iteration": int(rng.integers(0, 100)),
        "rank": rank,
    }


@settings(
    deadline=None,
    max_examples=25,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(
    seed=st.integers(0, 2**32 - 1),
    n_wiped=st.integers(0, 2),
)
def test_any_tolerable_wipe_pattern_recovers_bitwise(seed, n_wiped):
    """Wipe up to m = k/2 = 2 random nodes of a 4-wide encoding cluster:
    every member's state must come back bit-identical."""
    machine, clustering, ck = build()
    rng = np.random.default_rng(seed)
    members = [int(r) for r in clustering.l2_members(0)]
    originals = {}
    for rank in members:
        originals[rank] = random_state(rank, rng)
        ck.save_local(rank, originals[rank], version=0)
    ck.encode_cluster(0, 0)

    member_nodes = sorted({machine.node_of_rank(r) for r in members})
    wiped = rng.choice(member_nodes, size=n_wiped, replace=False)
    for node in wiped:
        machine.wipe_node(int(node))

    for rank in members:
        state, _, level = ck.restore(rank, 0)
        np.testing.assert_array_equal(
            state["field"], originals[rank]["field"]
        )
        assert state["iteration"] == originals[rank]["iteration"]
        expected_level = (
            "decoded" if machine.node_of_rank(rank) in wiped else "local"
        )
        assert level == expected_level


@settings(
    deadline=None,
    max_examples=15,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(seed=st.integers(0, 2**32 - 1))
def test_beyond_tolerance_is_always_detected(seed):
    """Wiping 3 of 4 member nodes (> m = 2) must raise, never return
    silently wrong data."""
    machine, clustering, ck = build()
    rng = np.random.default_rng(seed)
    members = [int(r) for r in clustering.l2_members(0)]
    for rank in members:
        ck.save_local(rank, random_state(rank, rng), version=0)
    ck.encode_cluster(0, 0)
    member_nodes = sorted({machine.node_of_rank(r) for r in members})
    for node in rng.choice(member_nodes, size=3, replace=False):
        machine.wipe_node(int(node))
    # Any member whose node was wiped must fail to restore, loudly.
    wiped_members = [
        r for r in members
        if ("ckpt", r, 0) not in machine.ssd_of_rank(r)
    ]
    with pytest.raises(RestoreError):
        ck.restore(wiped_members[0], 0)


@settings(deadline=None, max_examples=15)
@given(
    seed=st.integers(0, 2**32 - 1),
    versions=st.lists(st.integers(0, 50), min_size=1, max_size=6, unique=True),
)
def test_multiversion_bookkeeping(seed, versions):
    """Saving many versions keeps exactly the newest keep_versions ones."""
    machine, clustering, ck = build()
    ck.keep_versions = 3
    rng = np.random.default_rng(seed)
    for v in sorted(versions):
        ck.save_local(0, random_state(0, rng), version=v)
    kept = ck.versions_of(0)
    assert kept == sorted(versions)[-3:]
    for v in kept:
        state, _, level = ck.restore(0, v)
        assert level == "local"
