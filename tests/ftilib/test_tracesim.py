"""FTI trace-program tests: the §V world-level execution structure."""

import numpy as np
import pytest

from repro.apps import ExecutionMode, TsunamiConfig, TsunamiSimulation
from repro.ftilib import FTITraceConfig, make_fti_world_programs
from repro.machine import FTIPlacement
from repro.simmpi import Engine, TraceRecorder


def run_trace(nodes=4, app_per_node=4, iterations=10, checkpoint_every=5,
              allreduce_every=0):
    px = py = int((nodes * app_per_node) ** 0.5)
    assert px * py == nodes * app_per_node
    cfg = TsunamiConfig(
        px=px, py=py, nx=4 * px, ny=4 * py, iterations=iterations,
        synthetic=True, allreduce_every=allreduce_every,
    )
    sim = TsunamiSimulation(cfg)
    placement = FTIPlacement(nodes, app_per_node)
    programs = make_fti_world_programs(
        sim,
        placement,
        iterations=iterations,
        trace_cfg=FTITraceConfig(
            checkpoint_every=checkpoint_every, encoder_group_nodes=4
        ),
    )
    tracer = TraceRecorder(placement.nranks, by_kind=True)
    Engine(placement.nranks, tracer=tracer).run(programs)
    return placement, tracer


@pytest.fixture(scope="module")
def traced():
    return run_trace()


class TestWorldStructure:
    def test_encoders_receive_ready_messages(self, traced):
        placement, tracer = traced
        ready = tracer.kind_bytes("fti-ready")
        for enc in placement.encoder_ranks():
            node_apps = [
                r for r in placement.ranks_of_node(placement.node_of_rank(enc))
                if not placement.is_encoder(r)
            ]
            for app in node_apps:
                assert ready[enc, app] > 0  # light horizontal lines (Fig 5b)

    def test_encoder_ring_traffic(self, traced):
        """Isolated points at encoder-row/column intersections (Fig 5b)."""
        placement, tracer = traced
        enc = placement.encoder_ranks()
        ring = tracer.kind_bytes("fti-encode")
        # Encoders 0..3 form one ring: each sends to its right neighbor.
        for i in range(4):
            src, dst = enc[i], enc[(i + 1) % 4]
            assert ring[dst, src] > 0
        # And never to non-encoder ranks.
        mask = np.zeros(placement.nranks, dtype=bool)
        mask[enc] = True
        assert ring[~mask].sum() == 0
        assert ring[:, ~mask].sum() == 0

    def test_halo_diagonals_skip_encoder_ranks(self, traced):
        """App stencil traffic never touches encoder world ranks —
        the paper's 'diagonals get interrupted' observation."""
        placement, tracer = traced
        halo = tracer.kind_bytes("halo")
        for enc in placement.encoder_ranks():
            assert halo[enc, :].sum() == 0
            assert halo[:, enc].sum() == 0

    def test_allgather_covers_whole_world(self, traced):
        """FTI_Init's allgather involves every world rank (incl. encoders)."""
        placement, tracer = traced
        ag = tracer.kind_bytes("allgather")
        participates = (ag.sum(axis=0) > 0) | (ag.sum(axis=1) > 0)
        assert participates.all()

    def test_app_ranks_complete_all_iterations(self):
        placement, tracer = run_trace(iterations=8, checkpoint_every=3)
        # Re-run retaining results this time.
        cfg = TsunamiConfig(
            px=4, py=4, nx=16, ny=16, iterations=8, synthetic=True,
            allreduce_every=0,
        )
        sim = TsunamiSimulation(cfg)
        programs = make_fti_world_programs(
            sim, placement, iterations=8,
            trace_cfg=FTITraceConfig(checkpoint_every=3),
        )
        results = Engine(placement.nranks).run(programs)
        for rank, result in enumerate(results):
            if placement.is_encoder(rank):
                assert result["checkpoints"] == 2  # iterations 3 and 6
            else:
                assert result["iteration"] == 8

    def test_shape_mismatch_rejected(self):
        cfg = TsunamiConfig(px=2, py=2, nx=8, ny=8, synthetic=True)
        sim = TsunamiSimulation(cfg)
        with pytest.raises(ValueError):
            make_fti_world_programs(sim, FTIPlacement(4, 4), iterations=5)


class TestWaveEquivalence:
    def test_wave_native_programs_match_per_message(self):
        """The wave-native §V programs (halo waves + persistent ready /
        ring control traffic, re-armed across checkpoint rounds) are
        byte-identical in traces and bit-identical in clocks to the
        per-message reference."""
        runs = {}
        for use_waves in (False, True):
            cfg = TsunamiConfig(
                px=4, py=4, nx=16, ny=16, iterations=8, synthetic=True,
                allreduce_every=0,
                mode=(
                    ExecutionMode.KERNELS
                    if use_waves
                    else ExecutionMode.PER_MESSAGE
                ),
            )
            sim = TsunamiSimulation(cfg)
            placement = FTIPlacement(4, 4)
            programs = make_fti_world_programs(
                sim, placement, iterations=8,
                trace_cfg=FTITraceConfig(
                    checkpoint_every=3, encoder_group_nodes=4
                ),
            )
            tracer = TraceRecorder(placement.nranks, by_kind=True)
            engine = Engine(placement.nranks, tracer=tracer)
            results = engine.run(programs)
            runs[use_waves] = (results, engine.rank_times(), tracer)
        ref, waved = runs[False], runs[True]
        assert ref[0] == waved[0]
        assert ref[1] == waved[1]
        assert sorted(ref[2].kind_matrices) == sorted(waved[2].kind_matrices)
        for kind, matrix in ref[2].kind_matrices.items():
            np.testing.assert_array_equal(
                matrix, waved[2].kind_matrices[kind], err_msg=kind
            )
        np.testing.assert_array_equal(
            ref[2].count_matrix, waved[2].count_matrix
        )
