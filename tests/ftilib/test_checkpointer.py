"""Multilevel-checkpointer tests: levels, decode fallback, expiry."""

import numpy as np
import pytest

from repro.clustering import distributed_clustering, naive_clustering
from repro.ftilib import (
    MultilevelCheckpointer,
    RestoreError,
    half_parity_code,
)
from repro.machine import Machine


def small_machine(nnodes=4, ppn=2):
    return Machine(nnodes, ppn)


def state_for(rank, it=0):
    return {
        "eta": np.full((4, 4), float(rank) + 0.25),
        "iteration": it,
    }


def make_checkpointer(machine, clustering=None, **kw):
    clustering = clustering or distributed_clustering(machine.placement, 4)
    return MultilevelCheckpointer(machine, clustering, **kw)


class TestSaveRestoreLocal:
    def test_local_roundtrip(self):
        m = small_machine()
        ck = make_checkpointer(m)
        t = ck.save_local(3, state_for(3), version=0)
        assert t > 0
        state, seconds, level = ck.restore(3, 0)
        assert level == "local"
        np.testing.assert_array_equal(state["eta"], state_for(3)["eta"])

    def test_sidecar_meta(self):
        m = small_machine()
        ck = make_checkpointer(m)
        ck.save_local(0, state_for(0), 0, meta={"world_coll_seq": 5})
        assert ck.sidecar_meta(0, 0)["world_coll_seq"] == 5

    def test_missing_version_raises(self):
        ck = make_checkpointer(small_machine())
        with pytest.raises(RestoreError):
            ck.restore(0, 99)
        with pytest.raises(RestoreError):
            ck.sidecar_meta(0, 99)

    def test_versions_tracking(self):
        m = small_machine()
        ck = make_checkpointer(m, keep_versions=5)
        for v in (0, 4, 8):
            ck.save_local(1, state_for(1, v), v)
        assert ck.versions_of(1) == [0, 4, 8]

    def test_latest_common_version(self):
        m = small_machine()
        ck = make_checkpointer(m, keep_versions=5)
        ck.save_local(0, state_for(0, 0), 0)
        ck.save_local(0, state_for(0, 4), 4)
        ck.save_local(1, state_for(1, 0), 0)
        assert ck.latest_common_version([0, 1]) == 0
        with pytest.raises(RestoreError):
            ck.latest_common_version([0, 2])


class TestEncodedRestore:
    def _checkpoint_cluster(self, machine, ck, version=0):
        cluster0 = ck.clustering.l2_members(0)
        for rank in cluster0:
            ck.save_local(int(rank), state_for(int(rank), version), version)
        ck.encode_cluster(0, version)
        return [int(r) for r in cluster0]

    def test_decode_after_node_wipe(self):
        """The core FTI property: a node loss is rebuilt from parity."""
        m = small_machine()
        ck = make_checkpointer(m)
        members = self._checkpoint_cluster(m, ck)
        victim = members[0]
        m.wipe_node(m.node_of_rank(victim))
        state, seconds, level = ck.restore(victim, 0)
        assert level == "decoded"
        np.testing.assert_array_equal(state["eta"], state_for(victim)["eta"])
        assert ck.stats.restores_decoded == 1

    def test_decode_with_half_cluster_lost(self):
        """FTI's m = k RS: losing half the cluster's nodes is recoverable
        (each lost node costs a data shard AND a parity shard)."""
        m = small_machine()
        ck = make_checkpointer(m)
        members = self._checkpoint_cluster(m, ck)
        # Distributed clustering: members on 4 distinct nodes; kill 2 = k/2.
        for victim in members[:2]:
            m.wipe_node(m.node_of_rank(victim))
        for victim in members[:2]:
            state, _, level = ck.restore(victim, 0)
            assert level == "decoded"
            np.testing.assert_array_equal(state["eta"], state_for(victim)["eta"])

    def test_too_many_losses_without_pfs_is_catastrophic(self):
        m = small_machine()
        ck = make_checkpointer(m)
        members = self._checkpoint_cluster(m, ck)
        for victim in members[:3]:  # 3 > m = 2
            m.wipe_node(m.node_of_rank(victim))
        with pytest.raises(RestoreError, match="catastrophic"):
            ck.restore(members[0], 0)

    def test_pfs_fallback_saves_the_day(self):
        m = small_machine()
        ck = make_checkpointer(m)
        members = self._checkpoint_cluster(m, ck)
        ck.flush_to_pfs(0)
        for victim in members[:3]:
            m.wipe_node(m.node_of_rank(victim))
        state, _, level = ck.restore(members[0], 0)
        assert level == "pfs"
        np.testing.assert_array_equal(
            state["eta"], state_for(members[0])["eta"]
        )

    def test_encode_requires_all_members_saved(self):
        m = small_machine()
        ck = make_checkpointer(m)
        ck.save_local(int(ck.clustering.l2_members(0)[0]), state_for(0), 0)
        with pytest.raises(RestoreError):
            ck.encode_cluster(0, 0)

    def test_half_parity_ablation_is_weaker(self):
        """With m = k/2 co-located parity, one node loss costs 2 of 6
        shards (k=4): recoverable; two node losses are not."""
        m = small_machine()
        ck = make_checkpointer(m, code_factory=half_parity_code)
        members = self._checkpoint_cluster(m, ck)
        m.wipe_node(m.node_of_rank(members[0]))
        state, _, level = ck.restore(members[0], 0)
        assert level == "decoded"
        m.wipe_node(m.node_of_rank(members[1]))
        with pytest.raises(RestoreError):
            ck.restore(members[1], 0)

    def test_colocated_cluster_cannot_decode(self):
        """Non-distributed clusters lose data AND parity with the node —
        the §III-B reliability failure, reproduced mechanically."""
        m = small_machine(nnodes=4, ppn=4)
        colocated = naive_clustering(16, 4)  # 4 consecutive = 1 node
        ck = MultilevelCheckpointer(m, colocated)
        for rank in range(4):
            ck.save_local(rank, state_for(rank), 0)
        ck.encode_cluster(0, 0)
        m.wipe_node(0)
        with pytest.raises(RestoreError):
            ck.restore(0, 0)


class TestHousekeeping:
    def test_old_versions_expire(self):
        m = small_machine()
        ck = make_checkpointer(m, keep_versions=2)
        for v in range(5):
            ck.save_local(0, state_for(0, v), v)
        assert ck.versions_of(0) == [3, 4]
        with pytest.raises(RestoreError):
            ck.restore(0, 0)

    def test_parity_expires_with_cluster(self):
        m = small_machine()
        ck = make_checkpointer(m, keep_versions=1)
        members = [int(r) for r in ck.clustering.l2_members(0)]
        for v in (0, 1):
            for rank in members:
                ck.save_local(rank, state_for(rank, v), v)
            ck.encode_cluster(0, v)
        # Version 0 shards must be gone from every node SSD.
        for node in range(m.nnodes):
            for key in list(m.node_ssds[node].keys()):
                assert key[-1] != 0 or key[0] != "parity" or key[2] != 0

    def test_stats_accumulate(self):
        m = small_machine()
        ck = make_checkpointer(m)
        members = [int(r) for r in ck.clustering.l2_members(0)]
        for rank in members:
            ck.save_local(rank, state_for(rank), 0)
        ck.encode_cluster(0, 0)
        assert ck.stats.local_writes == 4
        assert ck.stats.encodings == 1
        assert ck.stats.total_write_time_s > 0
        assert ck.stats.total_encode_time_s > 0

    def test_validation(self):
        m = small_machine()
        with pytest.raises(ValueError):
            MultilevelCheckpointer(m, naive_clustering(99, 4))
        with pytest.raises(ValueError):
            make_checkpointer(m, keep_versions=0)
        ck = make_checkpointer(m)
        with pytest.raises(RestoreError):
            ck.flush_to_pfs(42)
