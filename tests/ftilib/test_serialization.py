"""Checkpoint serialization tests."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.ftilib import bytes_to_state, pad_to, state_to_bytes


class TestRoundTrip:
    def test_simple_state(self):
        state = {"eta": np.arange(12.0).reshape(3, 4), "iteration": 7}
        blob = state_to_bytes(state)
        out = bytes_to_state(blob)
        np.testing.assert_array_equal(out["eta"], state["eta"])
        assert out["iteration"] == 7

    def test_roundtrip_through_padding(self):
        state = {"x": np.array([1.5, -2.5])}
        blob = state_to_bytes(state)
        padded = pad_to(blob, blob.size + 100)
        out = bytes_to_state(padded, true_length=blob.size)
        np.testing.assert_array_equal(out["x"], state["x"])

    @settings(deadline=None, max_examples=25)
    @given(
        hnp.arrays(
            dtype=np.float64,
            shape=hnp.array_shapes(max_dims=2, max_side=8),
            elements=st.floats(allow_nan=False, width=64),
        ),
        st.integers(0, 10**6),
    )
    def test_bit_exact_roundtrip(self, arr, it):
        state = {"field": arr, "iteration": it}
        out = bytes_to_state(state_to_bytes(state))
        np.testing.assert_array_equal(out["field"], arr)
        assert out["field"].dtype == arr.dtype
        assert out["iteration"] == it


class TestPadTo:
    def test_noop_when_exact(self):
        buf = np.arange(4, dtype=np.uint8)
        assert pad_to(buf, 4) is buf or (pad_to(buf, 4) == buf).all()

    def test_pads_with_zeros(self):
        out = pad_to(np.array([1, 2], dtype=np.uint8), 5)
        np.testing.assert_array_equal(out, [1, 2, 0, 0, 0])

    def test_rejects_shrink(self):
        with pytest.raises(ValueError):
            pad_to(np.zeros(10, dtype=np.uint8), 5)

    def test_true_length_validation(self):
        with pytest.raises(ValueError):
            bytes_to_state(np.zeros(4, dtype=np.uint8), true_length=10)
