"""MTBF and failure-injection tests."""

import numpy as np
import pytest

from repro.failures import FailureInjector, FailureScenario, MTBFModel, ScheduledFailure
from repro.failures.events import FailureEvent
from repro.machine import BlockPlacement


class TestMTBF:
    def test_system_mtbf_scales_inversely_with_nodes(self):
        m = MTBFModel(node_mtbf_s=1e6, nnodes=1000)
        assert m.system_mtbf_s == pytest.approx(1000.0)

    def test_expected_failures(self):
        m = MTBFModel(node_mtbf_s=1e6, nnodes=100)
        assert m.expected_failures(1e5) == pytest.approx(10.0)

    def test_failure_times_within_horizon(self):
        m = MTBFModel(node_mtbf_s=1e4, nnodes=100)
        times = m.failure_times(1000.0, rng=0)
        assert (times >= 0).all() and (times < 1000.0).all()
        assert (np.diff(times) > 0).all()

    def test_failure_count_statistics(self):
        m = MTBFModel(node_mtbf_s=1e5, nnodes=100)  # system mtbf = 1000 s
        counts = [len(m.failure_times(10_000.0, rng=seed)) for seed in range(30)]
        assert np.mean(counts) == pytest.approx(10.0, rel=0.35)

    def test_validation(self):
        with pytest.raises(ValueError):
            MTBFModel(node_mtbf_s=0.0, nnodes=10)
        with pytest.raises(ValueError):
            MTBFModel(node_mtbf_s=1.0, nnodes=0)
        with pytest.raises(ValueError):
            MTBFModel(node_mtbf_s=1.0, nnodes=10).failure_times(-1.0)


class TestFailureScenario:
    def test_node_failure_factory(self):
        s = FailureScenario.node_failure(iteration=5, node=3)
        assert s.n_failures == 1
        events = s.events_at(5)
        assert events[0].nodes == (3,)
        assert s.events_at(4) == []

    def test_multi_node_factory(self):
        s = FailureScenario.multi_node_failure(2, (0, 1))
        assert s.events_at(2)[0].n_nodes == 2

    def test_scheduled_failure_validation(self):
        with pytest.raises(ValueError):
            ScheduledFailure(-1, FailureEvent(kind="node", nodes=(0,)))

    def test_empty_scenario(self):
        s = FailureScenario()
        assert s.n_failures == 0
        assert s.events_at(0) == []


class TestFailureInjector:
    def test_deterministic_given_seed(self):
        placement = BlockPlacement(8, 2)
        a = FailureInjector(placement, rng=5).sample_scenario(100, 0.1)
        b = FailureInjector(placement, rng=5).sample_scenario(100, 0.1)
        assert a == b

    def test_rate_zero_gives_no_failures(self):
        placement = BlockPlacement(8, 2)
        s = FailureInjector(placement, rng=0).sample_scenario(50, 0.0)
        assert s.n_failures == 0

    def test_rate_one_fails_every_iteration_until_overlap(self):
        # Rate 1.0 draws an event every iteration, but node events that
        # would re-kill an already-dead node are dropped: on an 8-node
        # machine the schedule saturates well before 20 events.
        placement = BlockPlacement(8, 2)
        s = FailureInjector(placement, rng=0).sample_scenario(20, 1.0)
        assert 0 < s.n_failures <= 20
        dead: set[int] = set()
        for f in s.failures:
            if f.event.kind == "node":
                assert not dead.intersection(f.event.nodes)
                dead.update(f.event.nodes)

    def test_rate_one_on_large_machine_rarely_drops(self):
        # With 512 nodes, single-node events almost never collide, so
        # nearly every iteration keeps its event.
        placement = BlockPlacement(512, 2)
        s = FailureInjector(placement, rng=0).sample_scenario(20, 1.0)
        assert s.n_failures >= 18

    def test_invalid_rate(self):
        placement = BlockPlacement(8, 2)
        with pytest.raises(ValueError):
            FailureInjector(placement).sample_scenario(10, 1.5)
