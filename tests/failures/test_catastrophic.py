"""Catastrophic-model tests: Table II reliability column + cross-validation."""

import numpy as np
import pytest

from repro.clustering import (
    PartitionCost,
    distributed_clustering,
    hierarchical_clustering,
    naive_clustering,
    size_guided_clustering,
)
from repro.commgraph import node_graph, paper_tsunami_matrix
from repro.failures import (
    CatastrophicModel,
    FailureEvent,
    MonteCarloEstimator,
    rs_half_tolerance,
    xor_tolerance,
)
from repro.machine import BlockPlacement


@pytest.fixture(scope="module")
def paper_setup():
    placement = BlockPlacement(64, 16)
    model = CatastrophicModel(placement)
    g = paper_tsunami_matrix(iterations=5)
    ng = node_graph(g, placement)
    hier = hierarchical_clustering(ng, placement, cost=PartitionCost(1.0, 8.0))
    return placement, model, hier


class TestTolerances:
    def test_rs_half(self):
        assert rs_half_tolerance(4) == 2
        assert rs_half_tolerance(32) == 16
        assert rs_half_tolerance(1) == 0

    def test_xor(self):
        assert xor_tolerance(4) == 1
        assert xor_tolerance(1) == 0


class TestEventPredicate:
    def test_node_loss_within_tolerance_survives(self, paper_setup):
        placement, model, hier = paper_setup
        event = FailureEvent(kind="node", nodes=(0,))
        # Hierarchical: one node = 1 member of each L2 cluster of 4 (m=2).
        assert not model.event_is_catastrophic(hier, event)

    def test_three_nodes_of_a_group_break_hierarchical(self, paper_setup):
        placement, model, hier = paper_setup
        event = FailureEvent(kind="node", nodes=(0, 1, 2))
        assert model.event_is_catastrophic(hier, event)

    def test_nonconsecutive_spread_survives(self, paper_setup):
        placement, model, hier = paper_setup
        # Three nodes in three different L2 groups: 1 loss each, tolerated.
        event = FailureEvent(kind="node", nodes=(0, 8, 16))
        assert not model.event_is_catastrophic(hier, event)

    def test_soft_error_never_catastrophic_with_rs(self, paper_setup):
        placement, model, hier = paper_setup
        event = FailureEvent(kind="soft", process=100)
        assert not model.event_is_catastrophic(hier, event)

    def test_single_node_kills_colocated_cluster(self, paper_setup):
        placement, model, _ = paper_setup
        sg = size_guided_clustering(1024, 8)  # 8 consecutive = half a node
        event = FailureEvent(kind="node", nodes=(5,))
        assert model.event_is_catastrophic(sg, event)


class TestTable2Reliability:
    """Orders of magnitude must match Table II's last column."""

    def test_naive_32_order_1e_minus_4(self, paper_setup):
        placement, model, _ = paper_setup
        p = model.probability(naive_clustering(1024, 32))
        assert 3e-5 < p < 3e-4

    def test_size_guided_is_095(self, paper_setup):
        placement, model, _ = paper_setup
        p = model.probability(size_guided_clustering(1024, 8))
        assert p == pytest.approx(0.95, abs=0.001)

    def test_distributed_16_order_1e_minus_15(self, paper_setup):
        placement, model, _ = paper_setup
        p = model.probability(distributed_clustering(placement, 16))
        assert 1e-16 < p < 1e-13

    def test_hierarchical_order_1e_minus_6(self, paper_setup):
        placement, model, hier = paper_setup
        p = model.probability(hier)
        assert 3e-7 < p < 3e-5

    def test_paper_ordering(self, paper_setup):
        """distributed ≪ hierarchical ≪ naive ≪ size-guided."""
        placement, model, hier = paper_setup
        p_dist = model.probability(distributed_clustering(placement, 16))
        p_hier = model.probability(hier)
        p_naive = model.probability(naive_clustering(1024, 32))
        p_sg = model.probability(size_guided_clustering(1024, 8))
        assert p_dist < p_hier < p_naive < p_sg


class TestFig4aDistributionStudy:
    """§III-C: 128 nodes × 8 ppn; distributed vs non-distributed, sizes 4/8/16."""

    def test_non_distributed_small_clusters_die_on_one_node(self):
        placement = BlockPlacement(128, 8)
        model = CatastrophicModel(placement)
        for size in (4, 8):
            p = model.probability(naive_clustering(1024, size))
            assert p == pytest.approx(0.95, abs=0.001), f"size {size}"

    def test_distribution_gains_orders_of_magnitude(self):
        placement = BlockPlacement(128, 8)
        model = CatastrophicModel(placement)
        for size in (4, 8, 16):
            p_non = model.probability(naive_clustering(1024, size))
            p_dist = model.probability(distributed_clustering(placement, size))
            assert p_dist < p_non / 1e3, f"size {size}"

    def test_distributed_reliability_improves_with_size(self):
        placement = BlockPlacement(128, 8)
        model = CatastrophicModel(placement)
        ps = [
            model.probability(distributed_clustering(placement, s))
            for s in (4, 8, 16)
        ]
        assert ps[0] > ps[1] > ps[2]


class TestBreakingRunFraction:
    def test_zero_when_tolerance_huge(self, paper_setup):
        placement, model, hier = paper_setup
        lenient = CatastrophicModel(placement, tolerance=lambda s: s)
        assert lenient.breaking_run_fraction(hier, 3) == 0.0

    def test_one_when_tolerance_zero(self, paper_setup):
        placement, _, hier = paper_setup
        strict = CatastrophicModel(placement, tolerance=lambda s: 0)
        assert strict.breaking_run_fraction(hier, 1) == 1.0

    def test_run_longer_than_machine_is_clamped(self, paper_setup):
        placement, model, hier = paper_setup
        assert model.breaking_run_fraction(hier, 10_000) == 1.0

    def test_xor_tolerance_weaker_than_rs(self, paper_setup):
        placement, model, hier = paper_setup
        xor_model = CatastrophicModel(placement, tolerance=xor_tolerance)
        assert xor_model.probability(hier) >= model.probability(hier)


class TestMonteCarloCrossValidation:
    def test_agrees_with_closed_form_on_fragile_clustering(self, paper_setup):
        placement, model, _ = paper_setup
        # Use the size-guided clustering: P = 0.95, so 2000 samples give
        # tight confidence.
        sg = size_guided_clustering(1024, 8)
        mc = MonteCarloEstimator(model, rng=1234)
        estimate = mc.estimate(sg, n_samples=2000)
        assert estimate == pytest.approx(0.95, abs=0.02)

    def test_sampled_events_are_wellformed(self, paper_setup):
        placement, model, _ = paper_setup
        mc = MonteCarloEstimator(model, rng=7)
        for _ in range(200):
            e = mc.sample_event()
            if e.kind == "node":
                assert all(0 <= n < placement.nnodes for n in e.nodes)
                diffs = np.diff(sorted(e.nodes))
                assert (diffs == 1).all() or len(e.nodes) == 1
            else:
                assert 0 <= e.process < placement.nranks

    def test_bad_sample_count(self, paper_setup):
        placement, model, hier = paper_setup
        with pytest.raises(ValueError):
            MonteCarloEstimator(model).estimate(hier, n_samples=0)


class TestBatchedSampling:
    def test_batch_is_wellformed(self, paper_setup):
        placement, model, _ = paper_setup
        batch = MonteCarloEstimator(model, rng=3).sample_events(2000)
        assert batch.n == 2000
        soft = batch.is_soft
        assert ((batch.process[soft] >= 0)).all()
        assert ((batch.process[soft] < placement.nranks)).all()
        lengths = batch.run_length[~soft]
        starts = batch.run_start[~soft]
        assert (lengths >= 1).all()
        assert (starts >= 0).all()
        assert (starts + lengths <= placement.nnodes).all()

    def test_batch_materializes_to_valid_events(self, paper_setup):
        placement, model, _ = paper_setup
        batch = MonteCarloEstimator(model, rng=11).sample_events(50)
        events = batch.events()
        assert len(events) == 50
        for i, event in enumerate(events):
            if event.kind == "node":
                nodes = np.asarray(event.nodes)
                assert (np.diff(nodes) == 1).all() or nodes.size == 1
            assert event == batch.event(i)

    def test_batched_predicate_matches_scalar(self, paper_setup):
        placement, model, hier = paper_setup
        batch = MonteCarloEstimator(model, rng=17).sample_events(300)
        verdicts = model.events_are_catastrophic(hier, batch)
        expected = [
            model.event_is_catastrophic(hier, e) for e in batch.events()
        ]
        np.testing.assert_array_equal(verdicts, expected)

    def test_bad_batch_size(self, paper_setup):
        placement, model, _ = paper_setup
        with pytest.raises(ValueError):
            MonteCarloEstimator(model).sample_events(0)

    def test_shape_mismatch_rejected(self, paper_setup):
        from repro.failures import EventBatch

        with pytest.raises(ValueError):
            EventBatch(
                is_soft=np.zeros(3, dtype=bool),
                process=np.zeros(2, dtype=np.int64),
                run_start=np.zeros(3, dtype=np.int64),
                run_length=np.ones(3, dtype=np.int64),
            )


class TestBatchedRunSweep:
    """The one-pass run-table sweep must equal the per-f scalar path."""

    def test_breaking_run_fractions_match_scalar(self, paper_setup):
        placement, model, hier = paper_setup
        clusterings = [
            naive_clustering(1024, 32),
            size_guided_clustering(1024, 8),
            hier,
        ]
        lengths = list(range(1, 12)) + [placement.nnodes + 5]  # incl. clamp
        for clustering in clusterings:
            scalar_model = CatastrophicModel(placement)
            batched = model.breaking_run_fractions(clustering, lengths)
            for f in lengths:
                assert batched[f] == scalar_model.breaking_run_fraction(
                    clustering, f
                )

    def test_probability_matches_explicit_pmf_loop(self, paper_setup):
        placement, model, hier = paper_setup
        for clustering in [size_guided_clustering(1024, 8), hier]:
            reference_model = CatastrophicModel(placement)
            pmf = model.taxonomy.node_count_pmf()
            expected = 0.0
            for idx, p_f in enumerate(pmf):
                if p_f == 0.0:
                    continue
                expected += p_f * reference_model.breaking_run_fraction(
                    clustering, idx + 1
                )
            expected *= 1.0 - model.taxonomy.p_soft
            assert model.probability(clustering) == expected

    def test_sweep_fills_the_per_length_cache(self, paper_setup):
        placement, model, _ = paper_setup
        clustering = naive_clustering(1024, 32)
        tables = model._tables(clustering)
        tables._run_cache.clear()
        out = tables.run_catastrophic_all([1, 3, 5])
        assert set(out) == {1, 3, 5}
        assert set(tables._run_cache) == {1, 3, 5}
        for f, verdict in out.items():
            assert verdict.shape == (placement.nnodes - f + 1,)
            np.testing.assert_array_equal(verdict, tables.run_catastrophic(f))
