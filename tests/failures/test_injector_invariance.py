"""FailureInjector sampling determinism across pool workers.

Mirrors the campaign-invariance tests: a master seed fans out into
per-task child streams (`spawn_rngs`), each task samples its scenario
from its own stream, and results are consumed in submission order — so
the sampled scenario stream is a pure function of the master seed, no
matter how many ProcessPoolExecutor workers execute the tasks.
"""

from concurrent.futures import ProcessPoolExecutor

from repro.failures import FailureInjector
from repro.machine import BlockPlacement
from repro.util.rng import spawn_rngs

ITERATIONS = 30
RATE = 0.5
MASTER_SEED = 123
N_TASKS = 8


def _sample_task(stream):
    injector = FailureInjector(BlockPlacement(16, 2), rng=stream)
    return injector.sample_scenario(ITERATIONS, RATE)


def _run(workers: int):
    streams = spawn_rngs(MASTER_SEED, N_TASKS)
    if workers == 0:
        return [_sample_task(s) for s in streams]
    with ProcessPoolExecutor(max_workers=workers) as pool:
        return list(pool.map(_sample_task, streams))


class TestInjectorPoolInvariance:
    def test_scenario_stream_is_worker_count_invariant(self):
        serial = _run(0)
        assert _run(2) == serial
        assert _run(4) == serial

    def test_streams_are_independent_and_deterministic(self):
        serial = _run(0)
        assert serial == _run(0)
        # Distinct child streams sample distinct schedules.
        assert len({s for s in serial if s.n_failures}) > 1
