"""Failure-taxonomy tests."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.failures import PAPER_TAXONOMY, FailureEvent, FailureTaxonomy


class TestFailureEvent:
    def test_node_event(self):
        e = FailureEvent(kind="node", nodes=(3, 4))
        assert e.n_nodes == 2

    def test_soft_event(self):
        e = FailureEvent(kind="soft", process=17)
        assert e.n_nodes == 0

    def test_validation(self):
        with pytest.raises(ValueError):
            FailureEvent(kind="meteor")
        with pytest.raises(ValueError):
            FailureEvent(kind="node", nodes=())
        with pytest.raises(ValueError):
            FailureEvent(kind="soft")


class TestTaxonomy:
    def test_pmf_sums_to_one(self):
        pmf = PAPER_TAXONOMY.node_count_pmf()
        assert pmf.sum() == pytest.approx(1.0)

    def test_single_node_dominates(self):
        pmf = PAPER_TAXONOMY.node_count_pmf()
        assert pmf[0] > 0.999
        assert pmf[1] == pytest.approx(2e-4 * 0.97, rel=1e-6)

    def test_tail_decays_geometrically(self):
        pmf = FailureTaxonomy(p_multi=1e-3, escalation=0.1).node_count_pmf()
        # P(f=3)/P(f=2) = escalation (both scaled by (1 - escalation)).
        assert pmf[2] / pmf[1] == pytest.approx(0.1)

    def test_event_probabilities(self):
        probs = PAPER_TAXONOMY.event_probabilities()
        assert probs["soft"] == pytest.approx(0.05)
        assert probs["node"] == pytest.approx(0.95)

    def test_paper_complement_is_095(self):
        """The 0.95 in Table II is literally 1 - p_soft."""
        assert 1.0 - PAPER_TAXONOMY.p_soft == pytest.approx(0.95)

    def test_validation(self):
        with pytest.raises(ValueError):
            FailureTaxonomy(p_soft=1.5)
        with pytest.raises(ValueError):
            FailureTaxonomy(escalation=0.0)
        with pytest.raises(ValueError):
            FailureTaxonomy(max_simultaneous=0)

    @given(
        st.floats(1e-6, 0.5),
        st.floats(1e-6, 0.9),
        st.integers(2, 30),
    )
    def test_pmf_always_normalized(self, p_multi, esc, fmax):
        tax = FailureTaxonomy(
            p_multi=p_multi, escalation=esc, max_simultaneous=fmax
        )
        pmf = tax.node_count_pmf()
        assert pmf.sum() == pytest.approx(1.0)
        assert (pmf >= 0).all()
