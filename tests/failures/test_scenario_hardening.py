"""FailureScenario normalization: sort order, rejection rules, merge."""

import pytest

from repro.failures import (
    FailureEvent,
    FailureInjector,
    FailureScenario,
    ScheduledFailure,
)
from repro.machine import Machine


def node_event(*nodes):
    return FailureEvent(kind="node", nodes=tuple(nodes))


def soft_event(process):
    return FailureEvent(kind="soft", process=process)


class TestNormalization:
    def test_schedule_is_sorted_by_iteration(self):
        scenario = FailureScenario(
            (
                ScheduledFailure(7, node_event(3)),
                ScheduledFailure(2, node_event(0)),
                ScheduledFailure(5, soft_event(1)),
            )
        )
        assert [f.iteration for f in scenario.failures] == [2, 5, 7]

    def test_node_events_sort_before_soft_at_same_iteration(self):
        scenario = FailureScenario(
            (
                ScheduledFailure(3, soft_event(0)),
                ScheduledFailure(3, node_event(5)),
            )
        )
        assert [f.event.kind for f in scenario.failures] == ["node", "soft"]

    def test_list_input_is_coerced_to_tuple(self):
        scenario = FailureScenario(
            [ScheduledFailure(1, node_event(0))]  # type: ignore[arg-type]
        )
        assert isinstance(scenario.failures, tuple)

    def test_events_at_sees_normalized_schedule(self):
        scenario = FailureScenario(
            (
                ScheduledFailure(4, soft_event(2)),
                ScheduledFailure(4, node_event(1)),
            )
        )
        kinds = [e.kind for e in scenario.events_at(4)]
        assert kinds == ["node", "soft"]

    def test_killed_nodes(self):
        scenario = FailureScenario(
            (
                ScheduledFailure(1, node_event(2, 3)),
                ScheduledFailure(5, node_event(6)),
                ScheduledFailure(6, soft_event(0)),
            )
        )
        assert scenario.killed_nodes() == {2, 3, 6}


class TestRejection:
    def test_duplicate_scheduled_failure_rejected(self):
        with pytest.raises(ValueError, match="duplicate scheduled failure"):
            FailureScenario(
                (
                    ScheduledFailure(2, node_event(1)),
                    ScheduledFailure(2, node_event(1)),
                )
            )

    def test_rekilling_a_dead_node_rejected(self):
        with pytest.raises(ValueError, match="already dead"):
            FailureScenario(
                (
                    ScheduledFailure(1, node_event(0, 1)),
                    ScheduledFailure(4, node_event(1, 2)),
                )
            )

    def test_overlapping_kill_at_same_iteration_rejected(self):
        with pytest.raises(ValueError, match="already dead"):
            FailureScenario(
                (
                    ScheduledFailure(3, node_event(0)),
                    ScheduledFailure(3, node_event(0, 1)),
                )
            )

    def test_duplicate_soft_errors_on_distinct_iterations_ok(self):
        scenario = FailureScenario(
            (
                ScheduledFailure(1, soft_event(4)),
                ScheduledFailure(2, soft_event(4)),
            )
        )
        assert scenario.n_failures == 2


class TestMerge:
    def test_merge_interleaves_and_sorts(self):
        a = FailureScenario.node_failure(5, 0)
        b = FailureScenario.node_failure(2, 3)
        c = FailureScenario((ScheduledFailure(2, soft_event(1)),))
        merged = a.merge(b, c)
        assert [f.iteration for f in merged.failures] == [2, 2, 5]
        assert merged.failures[0].event.kind == "node"

    def test_merge_rejects_overlapping_kills(self):
        a = FailureScenario.node_failure(1, 3)
        b = FailureScenario.multi_node_failure(6, (3, 4))
        with pytest.raises(ValueError, match="already dead"):
            a.merge(b)

    def test_merge_rejects_duplicates(self):
        a = FailureScenario.node_failure(1, 3)
        with pytest.raises(ValueError, match="duplicate"):
            a.merge(FailureScenario.node_failure(1, 3))

    def test_merge_with_empty_is_identity(self):
        a = FailureScenario.node_failure(4, 2)
        assert a.merge(FailureScenario()) == a


class TestInjectorSampling:
    def test_sampled_scenarios_never_rekill_dead_nodes(self):
        placement = Machine(16, 2).placement
        for seed in range(8):
            injector = FailureInjector(placement, rng=seed)
            scenario = injector.sample_scenario(40, 0.8)
            dead = set()
            for f in scenario.failures:
                if f.event.kind == "node":
                    assert not dead.intersection(f.event.nodes)
                    dead.update(f.event.nodes)

    def test_drop_does_not_shift_later_draws(self):
        """Dropping an overlapping event consumes its draws, so the tail
        of the stream is unchanged whether or not a drop occurred."""
        placement = Machine(4, 2).placement
        injector = FailureInjector(placement, rng=123)
        scenario = injector.sample_scenario(60, 0.9)
        # High rate on a tiny machine forces drops; the schedule must
        # still be valid and deterministic.
        again = FailureInjector(placement, rng=123).sample_scenario(60, 0.9)
        assert scenario == again
