"""Message-log unit tests."""

import numpy as np
import pytest

from repro.hydee import MessageLog, ReplayMismatchError


def make_log():
    # 4 processes, clusters {0,1} and {2,3}.
    return MessageLog(np.array([0, 0, 1, 1]))


class TestWants:
    def test_inter_cluster_logged(self):
        log = make_log()
        assert log.wants(1, 2)
        assert log.wants(3, 0)

    def test_intra_cluster_not_logged(self):
        log = make_log()
        assert not log.wants(0, 1)
        assert not log.wants(2, 3)


class TestRecord:
    def test_accumulates_bytes_and_counts(self):
        log = make_log()
        log.record(1, 2, tag=5, payload=b"xy", nbytes=2, kind="p2p")
        log.record(1, 2, tag=6, payload=b"z", nbytes=1, kind="p2p")
        assert log.logged_bytes == 3
        assert log.logged_messages == 2
        assert len(log.channel(1, 2)) == 2
        assert log.channel(1, 2)[0].tag == 5

    def test_payload_snapshot_is_isolated(self):
        log = make_log()
        arr = np.arange(4)
        log.record(1, 2, tag=0, payload=arr, nbytes=32, kind="p2p")
        arr[:] = -1
        np.testing.assert_array_equal(log.channel(1, 2)[0].payload, np.arange(4))

    def test_entries_to(self):
        log = make_log()
        log.record(0, 2, 0, None, 0, "p2p")
        log.record(1, 2, 0, None, 0, "p2p")
        by_sender = log.entries_to(2)
        assert set(by_sender) == {0, 1}


class TestCursor:
    def test_replays_in_order_from_position(self):
        log = make_log()
        for i in range(5):
            log.record(1, 2, tag=i, payload=i * 10, nbytes=8, kind="p2p")
        cursor = log.cursor({(1, 2): 2})  # receiver had consumed 2 already
        assert cursor.next_message(1, 2).payload == 20
        assert cursor.next_message(1, 2).payload == 30
        assert cursor.remaining(1, 2) == 1

    def test_exhausted_channel_raises(self):
        log = make_log()
        log.record(1, 2, tag=0, payload="a", nbytes=1, kind="p2p")
        cursor = log.cursor({})
        cursor.next_message(1, 2)
        with pytest.raises(ReplayMismatchError):
            cursor.next_message(1, 2)

    def test_tag_verification(self):
        log = make_log()
        log.record(1, 2, tag=7, payload="a", nbytes=1, kind="p2p")
        cursor = log.cursor({})
        with pytest.raises(ReplayMismatchError, match="tag"):
            cursor.next_message(1, 2, expected_tag=9)

    def test_empty_channel(self):
        cursor = make_log().cursor({})
        with pytest.raises(ReplayMismatchError):
            cursor.next_message(0, 3)
