"""Direct ReplayCommunicator unit tests (edge cases beyond the recovery
integration suite)."""

import numpy as np
import pytest

from repro.hydee import MessageLog, ReplayCommunicator
from repro.hydee.logging import ReplayMismatchError
from repro.simmpi import CommunicatorError, Engine
from repro.simmpi.request import ANY_SOURCE


def replay_engine(members, original_size, log, counts, body):
    """Run `body(comm)` as the single replayed member program."""
    outbound = []
    cursor = log.cursor(counts)

    def make_program(i):
        def program(ctx):
            comm = ReplayCommunicator(
                ctx, members, original_size, cursor, outbound
            )
            result = yield from body(comm)
            return result

        return program

    engine = Engine(len(members))
    results = engine.run([make_program(i) for i in range(len(members))])
    return results, outbound


def make_log():
    # World of 4: clusters {0,1} vs {2,3}; we replay {0,1}.
    log = MessageLog(np.array([0, 0, 1, 1]))
    return log


class TestIdentity:
    def test_rank_and_size_report_original_world(self):
        log = make_log()

        def body(comm):
            if False:
                yield
            return (comm.rank, comm.size)

        results, _ = replay_engine([0, 1], 4, log, {}, body)
        assert results == [(0, 4), (1, 4)]


class TestRouting:
    def test_intra_member_messages_flow(self):
        log = make_log()

        def body(comm):
            if comm.rank == 0:
                yield from comm.send("hello", dest=1, tag=3)
                return None
            return (yield from comm.recv(source=0, tag=3))

        results, _ = replay_engine([0, 1], 4, log, {}, body)
        assert results[1] == "hello"

    def test_external_recv_served_from_log_at_position(self):
        log = make_log()
        for i in range(3):
            log.record(2, 0, tag=9, payload=f"m{i}", nbytes=2, kind="p2p")

        def body(comm):
            if comm.rank == 0:
                return (yield from comm.recv(source=2, tag=9))
            if False:
                yield
            return None

        results, _ = replay_engine([0, 1], 4, log, {(2, 0): 1}, body)
        assert results[0] == "m1"  # position 0 was consumed pre-checkpoint

    def test_external_send_suppressed_and_captured(self):
        log = make_log()

        def body(comm):
            if comm.rank == 0:
                yield from comm.send(b"data", dest=3, tag=4)
            return None

        _, outbound = replay_engine([0, 1], 4, log, {}, body)
        assert len(outbound) == 1
        record = outbound[0]
        assert (record.src, record.dst, record.tag) == (0, 3, 4)
        assert record.nbytes == 4


class TestRefusals:
    def test_wildcard_source_rejected(self):
        log = make_log()

        def body(comm):
            if comm.rank == 0:
                with pytest.raises(CommunicatorError, match="wildcard"):
                    yield from comm.recv(source=ANY_SOURCE, tag=0)
            if False:
                yield
            return None

        replay_engine([0, 1], 4, log, {}, body)

    def test_split_rejected(self):
        log = make_log()

        def body(comm):
            if comm.rank == 0:
                with pytest.raises(CommunicatorError, match="replay"):
                    yield from comm.split(color=0)
            if False:
                yield
            return None

        replay_engine([0, 1], 4, log, {}, body)

    def test_persistent_requests_rejected(self):
        """Persistent starts would bypass log serving and send suppression;
        replay refuses the whole persistent API explicitly."""
        log = make_log()

        def body(comm):
            if comm.rank == 0:
                with pytest.raises(CommunicatorError, match="persistent"):
                    comm.recv_init(source=1, tag=0)
                with pytest.raises(CommunicatorError, match="persistent"):
                    comm.send_init(b"x", dest=1)
                with pytest.raises(CommunicatorError, match="persistent"):
                    yield from comm.start_all([])
            if False:
                yield
            return None

        replay_engine([0, 1], 4, log, {}, body)

    def test_advertises_no_wave_support(self):
        """Wave-native apps key their fallback off ``supports_waves``: a
        replay window must step through the per-message exchange, which is
        what the log can serve."""
        from repro.simmpi import Communicator

        assert Communicator.supports_waves is True
        assert ReplayCommunicator.supports_waves is False

    def test_wave_native_app_steps_fall_back_to_per_message(self):
        """A wave-native simulation (use_waves=True, the default) steps
        transparently through a ReplayCommunicator — the app detects the
        missing wave support instead of calling the refused API."""
        from repro.apps import TsunamiConfig, TsunamiSimulation

        cfg = TsunamiConfig(px=2, py=2, nx=8, ny=8, iterations=2)
        sim = TsunamiSimulation(cfg)
        assert cfg.use_waves
        log = MessageLog(np.array([0, 0, 1, 1]))

        def body(comm):
            state = sim.make_rank_state(comm.rank)
            # Members {0,1} exchange east-west only with each other on a
            # 2x2 grid... rank 0's south neighbor is 2 (external), so the
            # exchange needs the log for the (2,0)/(3,1) channels.
            yield from sim.step(comm, state)
            return state["iteration"]

        edge = cfg.grid.tile_nx * 3 * 8
        for src, dst in ((2, 0), (3, 1)):
            log.record(
                src, dst, tag=1000 + 0, payload=np.zeros(edge // 8),
                nbytes=edge, kind="halo",
            )
        results, outbound = replay_engine([0, 1], 4, log, {}, body)
        assert results == [1, 1]
        # The sends toward the survivors (ranks 2, 3) were suppressed.
        assert sorted((r.src, r.dst) for r in outbound) == [(0, 2), (1, 3)]

    def test_kernel_flagged_app_falls_back_through_replay(self):
        """A kernel-flagged app (use_kernels=True, the default) never
        emits a KernelLoop under a ReplayCommunicator: the gate keys off
        ``supports_waves`` exactly like the wave fallback, so the whole
        rank program — not just one step — runs per-message. (If the gate
        broke, the program would call the refused persistent-request API
        and this test would see CommunicatorError.)"""
        from types import SimpleNamespace

        from repro.apps import TsunamiConfig, TsunamiSimulation

        cfg = TsunamiConfig(
            px=2, py=2, nx=8, ny=8, iterations=2, synthetic=True,
            allreduce_every=0,
        )
        sim = TsunamiSimulation(cfg)
        assert cfg.use_kernels and cfg.use_waves
        log = MessageLog(np.array([0, 0, 1, 1]))
        edge = cfg.grid.tile_nx * 3 * 8
        for _ in range(cfg.iterations):
            for src, dst in ((2, 0), (3, 1)):
                log.record(
                    src, dst, tag=1000 + 0, payload=np.zeros(edge // 8),
                    nbytes=edge, kind="halo",
                )
        program = sim.make_program()

        def body(comm):
            state = yield from program(SimpleNamespace(comm=comm))
            return state["iteration"]

        results, outbound = replay_engine([0, 1], 4, log, {}, body)
        assert results == [2, 2]
        assert sorted((r.src, r.dst) for r in outbound) == [
            (0, 2), (0, 2), (1, 3), (1, 3),
        ]

    def test_out_of_world_destination_rejected(self):
        log = make_log()

        def body(comm):
            if comm.rank == 0:
                with pytest.raises(CommunicatorError):
                    yield from comm.send("x", dest=99)
            if False:
                yield
            return None

        replay_engine([0, 1], 4, log, {}, body)

    def test_exhausted_log_raises_mismatch(self):
        log = make_log()

        def body(comm):
            if comm.rank == 0:
                with pytest.raises(ReplayMismatchError):
                    yield from comm.recv(source=2, tag=0)
            if False:
                yield
            return None

        replay_engine([0, 1], 4, log, {}, body)
