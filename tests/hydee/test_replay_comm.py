"""Direct ReplayCommunicator unit tests (edge cases beyond the recovery
integration suite)."""

import numpy as np
import pytest

from repro.hydee import MessageLog, ReplayCommunicator
from repro.hydee.logging import ReplayMismatchError
from repro.simmpi import CommunicatorError, Engine
from repro.simmpi.request import ANY_SOURCE


def replay_engine(members, original_size, log, counts, body):
    """Run `body(comm)` as the single replayed member program."""
    outbound = []
    cursor = log.cursor(counts)

    def make_program(i):
        def program(ctx):
            comm = ReplayCommunicator(
                ctx, members, original_size, cursor, outbound
            )
            result = yield from body(comm)
            return result

        return program

    engine = Engine(len(members))
    results = engine.run([make_program(i) for i in range(len(members))])
    return results, outbound


def make_log():
    # World of 4: clusters {0,1} vs {2,3}; we replay {0,1}.
    log = MessageLog(np.array([0, 0, 1, 1]))
    return log


class TestIdentity:
    def test_rank_and_size_report_original_world(self):
        log = make_log()

        def body(comm):
            if False:
                yield
            return (comm.rank, comm.size)

        results, _ = replay_engine([0, 1], 4, log, {}, body)
        assert results == [(0, 4), (1, 4)]


class TestRouting:
    def test_intra_member_messages_flow(self):
        log = make_log()

        def body(comm):
            if comm.rank == 0:
                yield from comm.send("hello", dest=1, tag=3)
                return None
            return (yield from comm.recv(source=0, tag=3))

        results, _ = replay_engine([0, 1], 4, log, {}, body)
        assert results[1] == "hello"

    def test_external_recv_served_from_log_at_position(self):
        log = make_log()
        for i in range(3):
            log.record(2, 0, tag=9, payload=f"m{i}", nbytes=2, kind="p2p")

        def body(comm):
            if comm.rank == 0:
                return (yield from comm.recv(source=2, tag=9))
            if False:
                yield
            return None

        results, _ = replay_engine([0, 1], 4, log, {(2, 0): 1}, body)
        assert results[0] == "m1"  # position 0 was consumed pre-checkpoint

    def test_external_send_suppressed_and_captured(self):
        log = make_log()

        def body(comm):
            if comm.rank == 0:
                yield from comm.send(b"data", dest=3, tag=4)
            return None

        _, outbound = replay_engine([0, 1], 4, log, {}, body)
        assert len(outbound) == 1
        record = outbound[0]
        assert (record.src, record.dst, record.tag) == (0, 3, 4)
        assert record.nbytes == 4


class TestRefusals:
    def test_wildcard_source_rejected(self):
        log = make_log()

        def body(comm):
            if comm.rank == 0:
                with pytest.raises(CommunicatorError, match="wildcard"):
                    yield from comm.recv(source=ANY_SOURCE, tag=0)
            if False:
                yield
            return None

        replay_engine([0, 1], 4, log, {}, body)

    def test_split_rejected(self):
        log = make_log()

        def body(comm):
            if comm.rank == 0:
                with pytest.raises(CommunicatorError, match="replay"):
                    yield from comm.split(color=0)
            if False:
                yield
            return None

        replay_engine([0, 1], 4, log, {}, body)

    def test_persistent_requests_rejected(self):
        """Persistent starts would bypass log serving and send suppression;
        replay refuses the whole persistent API explicitly."""
        log = make_log()

        def body(comm):
            if comm.rank == 0:
                with pytest.raises(CommunicatorError, match="persistent"):
                    comm.recv_init(source=1, tag=0)
                with pytest.raises(CommunicatorError, match="persistent"):
                    comm.send_init(b"x", dest=1)
                with pytest.raises(CommunicatorError, match="persistent"):
                    yield from comm.start_all([])
            if False:
                yield
            return None

        replay_engine([0, 1], 4, log, {}, body)

    def test_out_of_world_destination_rejected(self):
        log = make_log()

        def body(comm):
            if comm.rank == 0:
                with pytest.raises(CommunicatorError):
                    yield from comm.send("x", dest=99)
            if False:
                yield
            return None

        replay_engine([0, 1], 4, log, {}, body)

    def test_exhausted_log_raises_mismatch(self):
        log = make_log()

        def body(comm):
            if comm.rank == 0:
                with pytest.raises(ReplayMismatchError):
                    yield from comm.recv(source=2, tag=0)
            if False:
                yield
            return None

        replay_engine([0, 1], 4, log, {}, body)
