"""Property-based recovery tests: equivalence across the parameter space.

These randomize what the hand-written integration tests fix — failure
iteration, checkpoint cadence, victim node, workload — and assert the same
invariant every time: contained recovery reproduces the failure-free
states bit for bit.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.apps import (
    HeatConfig,
    HeatSimulation,
    SpectralConfig,
    SpectralSimulation,
    TsunamiConfig,
    TsunamiSimulation,
)
from repro.clustering import Clustering
from repro.failures import FailureEvent
from repro.hydee import RecoveryManager, run_with_protocol
from repro.machine import Machine
from repro.simmpi import run_program


def hier_clustering_16():
    l1 = np.array([0] * 8 + [1] * 8)
    l2 = np.array([(r // 2 // 4) * 2 + (r % 2) for r in range(16)])
    return Clustering("hier-8-4", l1, l2)


@settings(
    deadline=None,
    max_examples=12,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(
    checkpoint_every=st.integers(3, 8),
    failure_iteration=st.integers(1, 14),
    victim=st.integers(0, 7),
)
def test_tsunami_recovery_equivalence_property(
    checkpoint_every, failure_iteration, victim
):
    """For any cadence/failure point/victim: recovery is bit-exact."""
    cfg = TsunamiConfig(px=4, py=4, nx=16, ny=16, iterations=14,
                        allreduce_every=4)
    sim = TsunamiSimulation(cfg)
    machine = Machine(8, 2)
    run = run_with_protocol(
        sim, machine, hier_clustering_16(), iterations=14,
        checkpoint_every=checkpoint_every, keep_versions=8,
    )
    manager = RecoveryManager(sim, machine, run)
    result = manager.recover(
        FailureEvent(kind="node", nodes=(victim,)),
        failure_iteration=failure_iteration,
    )
    reference = run_program(sim.make_program(iterations=failure_iteration), 16)
    for rank in result.restarted_ranks:
        np.testing.assert_array_equal(
            result.recovered_states[rank]["eta"], reference[rank]["eta"]
        )
        assert result.recovered_states[rank]["iteration"] == failure_iteration


def test_heat_recovery_equivalence():
    """Second workload: the protocol is application-agnostic."""
    cfg = HeatConfig(px=4, py=4, nx=16, ny=16, iterations=12)
    sim = HeatSimulation(cfg)
    machine = Machine(8, 2)
    run = run_with_protocol(
        sim, machine, hier_clustering_16(), iterations=12, checkpoint_every=5
    )
    manager = RecoveryManager(sim, machine, run)
    result = manager.recover(
        FailureEvent(kind="node", nodes=(2,)), failure_iteration=9
    )
    reference = run_program(sim.make_program(iterations=9), 16)
    for rank in result.restarted_ranks:
        np.testing.assert_array_equal(
            result.recovered_states[rank]["t"], reference[rank]["t"]
        )


class TestSpectralRecovery:
    """The hardest replay case: every iteration is a world all-to-all, so
    the replay window is dense with cross-cluster collective fragments."""

    def _setup(self):
        cfg = SpectralConfig(nranks=8, n=16, iterations=10)
        sim = SpectralSimulation(cfg)
        machine = Machine(4, 2)
        l1 = np.array([0, 0, 0, 0, 1, 1, 1, 1])  # 2 clusters of 2 nodes
        l2 = np.array([0, 1, 0, 1, 2, 3, 2, 3])  # stripes across the pair
        clustering = Clustering("spectral-hier", l1, l2)
        return sim, machine, clustering

    @pytest.mark.parametrize("failure_iteration", [5, 8, 10])
    def test_alltoall_replay_bitwise(self, failure_iteration):
        sim, machine, clustering = self._setup()
        run = run_with_protocol(
            sim, machine, clustering, iterations=10, checkpoint_every=4
        )
        manager = RecoveryManager(sim, machine, run)
        result = manager.recover(
            FailureEvent(kind="node", nodes=(1,)),
            failure_iteration=failure_iteration,
        )
        reference = run_program(
            sim.make_program(iterations=failure_iteration), 8
        )
        for rank in result.restarted_ranks:
            np.testing.assert_array_equal(
                result.recovered_states[rank]["pencil"],
                reference[rank]["pencil"],
            )

    def test_alltoall_send_determinism(self):
        sim, machine, clustering = self._setup()
        run = run_with_protocol(
            sim, machine, clustering, iterations=10, checkpoint_every=4
        )
        manager = RecoveryManager(sim, machine, run)
        result = manager.recover(
            FailureEvent(kind="node", nodes=(0,)), failure_iteration=7
        )
        assert result.outbound
        manager.verify_send_determinism(result)
