"""Failure-contained recovery: the end-to-end integration tests.

The headline property under test: after a node failure, restoring *only*
the failed L1 cluster from its checkpoint (erasure-decoded where the SSD
died) and replaying the sender-based log reproduces the failure-free
execution **bit for bit**, without rolling back any other cluster.
"""

import numpy as np
import pytest

from repro.apps import TsunamiConfig, TsunamiSimulation
from repro.clustering import Clustering
from repro.failures import FailureEvent
from repro.hydee import (
    ContainedRecoveryError,
    RecoveryManager,
    run_with_protocol,
)
from repro.machine import Machine
from repro.simmpi import run_program


def hierarchical_16():
    """Hand-built §IV-B clustering on 8 nodes x 2 ppn: two L1 clusters of
    4 nodes (8 ranks), L2 stripes of 4 across each L1's nodes."""
    l1 = np.array([0] * 8 + [1] * 8)
    l2 = np.array([(r // 2 // 4) * 2 + (r % 2) for r in range(16)])
    return Clustering("hier-8-4", l1, l2)


def make_run(iterations=12, checkpoint_every=5, allreduce_every=4):
    cfg = TsunamiConfig(
        px=4, py=4, nx=16, ny=16, iterations=iterations,
        allreduce_every=allreduce_every,
    )
    sim = TsunamiSimulation(cfg)
    machine = Machine(8, 2)
    clustering = hierarchical_16()
    run = run_with_protocol(
        sim, machine, clustering, iterations=iterations,
        checkpoint_every=checkpoint_every,
    )
    return sim, machine, clustering, run


@pytest.fixture(scope="module")
def completed_run():
    return make_run()


class TestContainment:
    def test_restart_set_is_one_cluster_for_node_failure(self, completed_run):
        sim, machine, clustering, run = completed_run
        manager = RecoveryManager(sim, machine, run)
        ranks, clusters = manager.restart_set(
            FailureEvent(kind="node", nodes=(2,))
        )
        assert clusters == [0]
        assert ranks == list(range(8))

    def test_soft_error_restarts_one_cluster(self, completed_run):
        sim, machine, clustering, run = completed_run
        manager = RecoveryManager(sim, machine, run)
        ranks, clusters = manager.restart_set(
            FailureEvent(kind="soft", process=5)
        )
        assert clusters == [0]
        assert ranks == list(range(8))

    def test_multi_node_failure_touches_their_clusters_only(self, completed_run):
        sim, machine, clustering, run = completed_run
        manager = RecoveryManager(sim, machine, run)
        ranks, clusters = manager.restart_set(
            FailureEvent(kind="node", nodes=(0, 5))
        )
        assert clusters == [0, 1]
        assert len(ranks) == 16


class TestRecoveryEquivalence:
    """Recovered states must equal the failure-free history, bitwise."""

    @pytest.mark.parametrize("failure_iteration", [7, 10, 12])
    def test_node_failure_recovery_bitwise(self, failure_iteration):
        sim, machine, clustering, run = make_run(iterations=12)
        manager = RecoveryManager(sim, machine, run)
        event = FailureEvent(kind="node", nodes=(1,))
        result = manager.recover(event, failure_iteration=failure_iteration)

        assert result.restarted_clusters == [0]
        assert result.rollback_iteration == (5 if failure_iteration < 10 else 10)
        # Only the dead node's ranks needed the erasure-decode path; the
        # L1 co-members on healthy nodes restored from their local SSDs.
        assert sorted(result.decoded_ranks()) == [2, 3]
        locals_ = [r for r, lvl in result.restore_levels.items() if lvl == "local"]
        assert sorted(locals_) == [0, 1, 4, 5, 6, 7]

        reference = run_program(
            sim.make_program(iterations=failure_iteration), 16
        )
        for rank in result.restarted_ranks:
            np.testing.assert_array_equal(
                result.recovered_states[rank]["eta"], reference[rank]["eta"]
            )
            np.testing.assert_array_equal(
                result.recovered_states[rank]["u"], reference[rank]["u"]
            )
            np.testing.assert_array_equal(
                result.recovered_states[rank]["v"], reference[rank]["v"]
            )
            assert result.recovered_states[rank]["iteration"] == failure_iteration

    def test_failure_at_checkpoint_boundary_needs_no_replay(self):
        sim, machine, clustering, run = make_run(iterations=12)
        manager = RecoveryManager(sim, machine, run)
        result = manager.recover(
            FailureEvent(kind="node", nodes=(2,)), failure_iteration=10
        )
        assert result.rollback_iteration == 10
        reference = run_program(sim.make_program(iterations=10), 16)
        for rank in result.restarted_ranks:
            np.testing.assert_array_equal(
                result.recovered_states[rank]["eta"], reference[rank]["eta"]
            )

    def test_recovery_with_collectives_in_window(self):
        """The replay window contains a world allreduce: its fragments must
        come out of the log and combine to the same result."""
        sim, machine, clustering, run = make_run(
            iterations=10, checkpoint_every=6, allreduce_every=4
        )
        # Window [6, 9): allreduce at iteration 8 crosses clusters.
        manager = RecoveryManager(sim, machine, run)
        result = manager.recover(
            FailureEvent(kind="node", nodes=(0,)), failure_iteration=9
        )
        reference = run_program(sim.make_program(iterations=9), 16)
        for rank in result.restarted_ranks:
            np.testing.assert_array_equal(
                result.recovered_states[rank]["eta"], reference[rank]["eta"]
            )
            assert result.recovered_states[rank]["eta_max"] == pytest.approx(
                reference[rank]["eta_max"]
            )

    def test_send_determinism_verified(self):
        sim, machine, clustering, run = make_run(iterations=12)
        manager = RecoveryManager(sim, machine, run)
        result = manager.recover(
            FailureEvent(kind="node", nodes=(1,)), failure_iteration=8
        )
        assert result.outbound  # the cluster talked to its neighbors
        manager.verify_send_determinism(result)  # must not raise

    def test_survivors_never_touched(self):
        """Failure containment: non-failed clusters' states are not rolled
        back or modified by the recovery."""
        sim, machine, clustering, run = make_run(iterations=12)
        before = [
            {k: (v.copy() if isinstance(v, np.ndarray) else v) for k, v in s.items()}
            for s in run.states
        ]
        manager = RecoveryManager(sim, machine, run)
        result = manager.recover(
            FailureEvent(kind="node", nodes=(7,)), failure_iteration=11
        )
        survivor_ranks = [r for r in range(16) if r not in result.restarted_ranks]
        assert len(survivor_ranks) == 8
        for rank in survivor_ranks:
            np.testing.assert_array_equal(
                run.states[rank]["eta"], before[rank]["eta"]
            )


class TestResume:
    def test_resumed_run_matches_failure_free_end_state(self):
        """Recover at iteration 8, resume to 12: equals the bare 12-iter run."""
        sim, machine, clustering, run = make_run(iterations=12)
        manager = RecoveryManager(sim, machine, run)

        # Survivors are at 12 in the stored run; emulate a failure at 12 and
        # resume further to 16.
        result = manager.recover(
            FailureEvent(kind="node", nodes=(1,)), failure_iteration=12
        )
        final = manager.resume(result, iterations=16)
        reference = run_program(sim.make_program(iterations=16), 16)
        for rank in range(16):
            np.testing.assert_array_equal(
                final[rank]["eta"], reference[rank]["eta"]
            )

    def test_resume_requires_aligned_states(self):
        sim, machine, clustering, run = make_run(iterations=12)
        manager = RecoveryManager(sim, machine, run)
        result = manager.recover(
            FailureEvent(kind="node", nodes=(1,)), failure_iteration=8
        )
        # Survivors are at 12, recovered ranks at 8: resume must refuse.
        with pytest.raises(ContainedRecoveryError):
            manager.resume(result, iterations=16)


class TestMultiClusterRecovery:
    def test_two_failed_clusters_corecover(self):
        sim, machine, clustering, run = make_run(iterations=12)
        manager = RecoveryManager(sim, machine, run)
        result = manager.recover(
            FailureEvent(kind="node", nodes=(1, 6)), failure_iteration=9
        )
        assert result.restarted_clusters == [0, 1]
        reference = run_program(sim.make_program(iterations=9), 16)
        for rank in result.restarted_ranks:
            np.testing.assert_array_equal(
                result.recovered_states[rank]["eta"], reference[rank]["eta"]
            )

    def test_restart_fraction_reported(self):
        sim, machine, clustering, run = make_run(iterations=12)
        manager = RecoveryManager(sim, machine, run)
        result = manager.recover(
            FailureEvent(kind="node", nodes=(0,)), failure_iteration=7
        )
        assert result.restart_fraction == pytest.approx(8 / 16)
