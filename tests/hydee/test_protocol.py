"""Protocol-run tests: checkpoint cadence, logging selectivity, transparency."""

import numpy as np
import pytest

from repro.apps import ExecutionMode, TsunamiConfig, TsunamiSimulation
from repro.clustering import naive_clustering
from repro.hydee import run_with_protocol
from repro.machine import Machine
from repro.simmpi import run_program


def small_setup(ppn=4, nodes=4, **cfg_kw):
    """16-rank tsunami on a 4-node machine; clusters = nodes (aligned)."""
    cfg_defaults = dict(px=4, py=4, nx=16, ny=16, iterations=12, allreduce_every=5)
    cfg_defaults.update(cfg_kw)
    cfg = TsunamiConfig(**cfg_defaults)
    sim = TsunamiSimulation(cfg)
    machine = Machine(nodes, ppn)
    clustering = naive_clustering(16, ppn)  # one cluster per node
    return sim, machine, clustering


class TestProtocolRun:
    def test_application_result_is_unchanged(self):
        """The FT hook must be transparent: same states as a bare run."""
        sim, machine, clustering = small_setup()
        run = run_with_protocol(
            sim, machine, clustering, iterations=12, checkpoint_every=5
        )
        bare = run_program(sim.make_program(iterations=12), 16)
        for with_ft, without in zip(run.states, bare):
            np.testing.assert_array_equal(with_ft["eta"], without["eta"])
            np.testing.assert_array_equal(with_ft["u"], without["u"])

    def test_checkpoint_cadence(self):
        sim, machine, clustering = small_setup()
        run = run_with_protocol(
            sim, machine, clustering, iterations=12, checkpoint_every=5
        )
        for cluster in range(clustering.n_l1_clusters):
            assert run.checkpoint_versions[cluster] == [0, 5, 10]

    def test_latest_checkpoint_lookup(self):
        sim, machine, clustering = small_setup()
        run = run_with_protocol(
            sim, machine, clustering, iterations=12, checkpoint_every=5
        )
        assert run.latest_checkpoint(0, at_or_before=7) == 5
        assert run.latest_checkpoint(0, at_or_before=4) == 0
        with pytest.raises(ValueError):
            run.latest_checkpoint(0, at_or_before=-1)

    def test_only_inter_cluster_messages_logged(self):
        sim, machine, clustering = small_setup()
        run = run_with_protocol(
            sim, machine, clustering, iterations=6, checkpoint_every=3
        )
        labels = clustering.l1_labels
        for (src, dst), entries in run.log.channels.items():
            assert labels[src] != labels[dst]
            assert entries

    def test_logged_fraction_matches_graph_prediction(self):
        """Observed logging == the model's logged_fraction on the same graph."""
        sim, machine, clustering = small_setup(allreduce_every=0)
        run = run_with_protocol(
            sim, machine, clustering, iterations=8, checkpoint_every=4,
            trace=True,
        )
        from repro.commgraph import graph_from_trace

        graph = graph_from_trace(run.engine.tracer)
        predicted = graph.logged_fraction(clustering.l1_labels)
        assert run.logged_fraction_observed == pytest.approx(predicted)

    def test_every_rank_checkpointed_every_version(self):
        sim, machine, clustering = small_setup()
        run = run_with_protocol(
            sim, machine, clustering, iterations=11, checkpoint_every=5
        )
        for rank in range(16):
            assert run.checkpointer.versions_of(rank) == [0, 5, 10]

    def test_checkpoint_states_are_bit_identical_to_live_history(self):
        """A checkpoint at iteration v equals the bare run's state at v."""
        sim, machine, clustering = small_setup()
        run = run_with_protocol(
            sim, machine, clustering, iterations=12, checkpoint_every=5
        )
        reference = run_program(sim.make_program(iterations=10), 16)
        for rank in range(16):
            state, _, level = run.checkpointer.restore(rank, 10)
            assert level == "local"
            np.testing.assert_array_equal(state["eta"], reference[rank]["eta"])

    def test_virtual_time_includes_checkpoint_cost(self):
        sim, machine, clustering = small_setup()
        run = run_with_protocol(
            sim, machine, clustering, iterations=6, checkpoint_every=2
        )
        bare_engine_times = run_program(
            sim.make_program(iterations=6), 16
        )
        assert run.engine.max_time > 0
        assert run.checkpointer.stats.total_encode_time_s > 0

    def test_mismatched_machine_rejected(self):
        sim, machine, clustering = small_setup()
        with pytest.raises(ValueError):
            run_with_protocol(sim, Machine(2, 4), clustering, iterations=4)


class TestWaveEquivalence:
    """Wave-native and per-message protocol runs are one workload.

    The protocol installs both per-message observers (sender-based payload
    log, receive counting); the halo waves must feed them identically —
    logged receives consume :class:`MessageView`\\ s from waves without
    perturbing a single count, sidecar or clock.
    """

    def _pair(self, iterations=12, checkpoint_every=5, **cfg_kw):
        runs = {}
        for use_waves in (False, True):
            mode = (
                ExecutionMode.KERNELS
                if use_waves
                else ExecutionMode.PER_MESSAGE
            )
            sim, machine, clustering = small_setup(mode=mode, **cfg_kw)
            runs[use_waves] = run_with_protocol(
                sim, machine, clustering,
                iterations=iterations, checkpoint_every=checkpoint_every,
            )
        return runs[False], runs[True]

    def test_states_clocks_and_recv_counts_identical(self):
        ref, waved = self._pair()
        for ref_state, wave_state in zip(ref.states, waved.states):
            np.testing.assert_array_equal(ref_state["eta"], wave_state["eta"])
            np.testing.assert_array_equal(ref_state["u"], wave_state["u"])
            np.testing.assert_array_equal(ref_state["v"], wave_state["v"])
        assert ref.engine.rank_times() == waved.engine.rank_times()
        assert ref.engine.recv_counts == waved.engine.recv_counts

    def test_message_log_identical_channel_by_channel(self):
        ref, waved = self._pair()
        assert sorted(ref.log.channels) == sorted(waved.log.channels)
        for channel, entries in ref.log.channels.items():
            others = waved.log.channels[channel]
            assert len(entries) == len(others)
            for entry, other in zip(entries, others):
                assert (entry.tag, entry.nbytes) == (other.tag, other.nbytes)
                if isinstance(entry.payload, np.ndarray):
                    np.testing.assert_array_equal(entry.payload, other.payload)
                else:
                    assert entry.payload == other.payload
        assert ref.log.logged_bytes == waved.log.logged_bytes

    def test_checkpoint_sidecars_identical(self):
        """The receive positions frozen into every checkpoint sidecar —
        what replay resumes from — must not feel the wave port."""
        ref, waved = self._pair()
        for rank in range(16):
            versions = ref.checkpointer.versions_of(rank)
            assert versions == waved.checkpointer.versions_of(rank)
            for version in versions:
                assert ref.checkpointer.sidecar_meta(
                    rank, version
                ) == waved.checkpointer.sidecar_meta(rank, version)
