"""Log-truncation tests: garbage collection without breaking recovery."""

import numpy as np
import pytest

from repro.apps import TsunamiConfig, TsunamiSimulation
from repro.clustering import Clustering
from repro.failures import FailureEvent
from repro.hydee import (
    MessageLog,
    RecoveryManager,
    ReplayMismatchError,
    run_with_protocol,
)
from repro.machine import Machine
from repro.simmpi import run_program


class TestMessageLogTruncation:
    def make_log(self, n=6):
        log = MessageLog(np.array([0, 0, 0, 1, 1, 1]))
        for i in range(n):
            log.record(0, 3, tag=i, payload=i, nbytes=10, kind="p2p")
        return log

    def test_truncate_frees_bytes(self):
        log = self.make_log()
        freed = log.truncate({(0, 3): 4})
        assert freed == 40
        assert log.live_bytes == 20
        assert log.base_offset(0, 3) == 4
        assert len(log.channel(0, 3)) == 2

    def test_positions_stay_absolute(self):
        log = self.make_log()
        log.truncate({(0, 3): 3})
        cursor = log.cursor({(0, 3): 3})
        assert cursor.next_message(0, 3).payload == 3
        assert cursor.next_message(0, 3).payload == 4
        assert cursor.remaining(0, 3) == 1

    def test_replaying_into_truncated_region_is_loud(self):
        log = self.make_log()
        log.truncate({(0, 3): 4})
        cursor = log.cursor({(0, 3): 2})  # older position than truncation
        with pytest.raises(ReplayMismatchError, match="truncated"):
            cursor.next_message(0, 3)

    def test_truncation_is_idempotent_and_monotone(self):
        log = self.make_log()
        assert log.truncate({(0, 3): 4}) == 40
        assert log.truncate({(0, 3): 4}) == 0
        assert log.truncate({(0, 3): 2}) == 0  # cannot un-truncate
        assert log.truncate({(0, 3): 6}) == 20

    def test_unknown_channel_ignored(self):
        log = self.make_log()
        assert log.truncate({(5, 0): 10}) == 0


class TestProtocolTruncation:
    def make_run(self, iterations=14, checkpoint_every=5):
        cfg = TsunamiConfig(
            px=4, py=4, nx=16, ny=16, iterations=iterations, allreduce_every=0
        )
        sim = TsunamiSimulation(cfg)
        machine = Machine(8, 2)
        l1 = np.array([0] * 8 + [1] * 8)
        l2 = np.array([(r // 2 // 4) * 2 + (r % 2) for r in range(16)])
        clustering = Clustering("hier-8-4", l1, l2)
        run = run_with_protocol(
            sim, machine, clustering, iterations=iterations,
            checkpoint_every=checkpoint_every,
        )
        return sim, machine, run

    def test_truncation_frees_memory(self):
        sim, machine, run = self.make_run()
        before = run.log.live_bytes
        freed = run.truncate_log(keep_from_version=10)
        assert freed > 0
        assert run.log.live_bytes == before - freed

    def test_recovery_from_latest_checkpoint_survives_truncation(self):
        """After truncating up to the newest common version, a recovery
        rolling back to that version still replays bit-exactly."""
        sim, machine, run = self.make_run()
        run.truncate_log(keep_from_version=10)
        manager = RecoveryManager(sim, machine, run)
        result = manager.recover(
            FailureEvent(kind="node", nodes=(1,)), failure_iteration=13
        )
        assert result.rollback_iteration == 10
        reference = run_program(sim.make_program(iterations=13), 16)
        for rank in result.restarted_ranks:
            np.testing.assert_array_equal(
                result.recovered_states[rank]["eta"], reference[rank]["eta"]
            )

    def test_default_truncation_keeps_oldest_restorable_version_safe(self):
        """With no explicit version, truncation anchors at the oldest
        checkpoint any rank still holds — every possible rollback works."""
        sim, machine, run = self.make_run()
        run.truncate_log()
        manager = RecoveryManager(sim, machine, run)
        oldest = min(run.checkpointer.versions_of(0))
        result = manager.recover(
            FailureEvent(kind="node", nodes=(2,)),
            failure_iteration=oldest + 2,
        )
        reference = run_program(sim.make_program(iterations=oldest + 2), 16)
        for rank in result.restarted_ranks:
            np.testing.assert_array_equal(
                result.recovered_states[rank]["eta"], reference[rank]["eta"]
            )

    def test_over_truncation_detected_not_corrupting(self):
        """Truncating past a version and then replaying from it fails
        loudly rather than serving wrong messages."""
        sim, machine, run = self.make_run()
        # Truncate as if version 10 were the rollback floor...
        run.truncate_log(keep_from_version=10)
        manager = RecoveryManager(sim, machine, run)
        # ...then force a rollback to version 5 (pretend 10 is unusable).
        run.checkpoint_versions = {
            c: [v for v in vs if v <= 5]
            for c, vs in run.checkpoint_versions.items()
        }
        with pytest.raises(ReplayMismatchError, match="truncat"):
            manager.recover(
                FailureEvent(kind="node", nodes=(1,)), failure_iteration=8
            )
