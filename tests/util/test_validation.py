"""Unit tests for repro.util.validation."""

import pytest

from repro.util import (
    check_in_range,
    check_positive,
    check_power_of_two,
    check_probability,
)


class TestCheckPositive:
    def test_accepts_positive(self):
        assert check_positive("x", 3.5) == 3.5

    def test_rejects_zero_when_strict(self):
        with pytest.raises(ValueError, match="x"):
            check_positive("x", 0)

    def test_accepts_zero_when_not_strict(self):
        assert check_positive("x", 0, strict=False) == 0

    def test_rejects_negative_even_when_not_strict(self):
        with pytest.raises(ValueError):
            check_positive("x", -1, strict=False)


class TestCheckInRange:
    def test_inclusive_bounds(self):
        assert check_in_range("y", 1.0, 1.0, 2.0) == 1.0
        assert check_in_range("y", 2.0, 1.0, 2.0) == 2.0

    def test_exclusive_bounds(self):
        with pytest.raises(ValueError):
            check_in_range("y", 1.0, 1.0, 2.0, inclusive=False)

    def test_outside_raises(self):
        with pytest.raises(ValueError, match="y"):
            check_in_range("y", 5.0, 1.0, 2.0)


class TestCheckProbability:
    def test_accepts_unit_interval(self):
        assert check_probability("p", 0.0) == 0.0
        assert check_probability("p", 1.0) == 1.0
        assert check_probability("p", 0.5) == 0.5

    def test_rejects_above_one(self):
        with pytest.raises(ValueError):
            check_probability("p", 1.5)

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            check_probability("p", -0.1)


class TestCheckPowerOfTwo:
    @pytest.mark.parametrize("n", [1, 2, 4, 8, 1024, 2**20])
    def test_accepts_powers(self, n):
        assert check_power_of_two("n", n) == n

    @pytest.mark.parametrize("n", [0, -2, 3, 6, 12, 1000])
    def test_rejects_non_powers(self, n):
        with pytest.raises(ValueError):
            check_power_of_two("n", n)
