"""Unit tests for repro.util.units."""


import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.util import (
    GiB,
    KiB,
    MiB,
    format_bytes,
    format_duration,
    format_probability,
    parse_size,
)


class TestConstants:
    def test_kib(self):
        assert KiB == 1024

    def test_mib(self):
        assert MiB == 1024**2

    def test_gib(self):
        assert GiB == 1024**3


class TestFormatBytes:
    def test_bytes(self):
        assert format_bytes(512) == "512 B"

    def test_zero(self):
        assert format_bytes(0) == "0 B"

    def test_kib(self):
        assert format_bytes(1536) == "1.50 KiB"

    def test_mib(self):
        assert format_bytes(2 * MiB) == "2.00 MiB"

    def test_gib(self):
        assert format_bytes(GiB) == "1.00 GiB"

    def test_tib(self):
        assert format_bytes(3 * 1024 * GiB) == "3.00 TiB"

    def test_negative(self):
        assert format_bytes(-1536) == "-1.50 KiB"

    def test_fractional(self):
        assert format_bytes(0.5) == "0 B" or format_bytes(0.5).endswith("B")


class TestParseSize:
    def test_plain_int(self):
        assert parse_size(42) == 42

    def test_plain_float(self):
        assert parse_size(42.7) == 42

    def test_numeric_string(self):
        assert parse_size("1000") == 1000

    def test_binary_suffixes(self):
        assert parse_size("4 GiB") == 4 * GiB
        assert parse_size("2MiB") == 2 * MiB
        assert parse_size("1 KiB") == KiB

    def test_decimal_suffixes(self):
        assert parse_size("1 kB") == 1000
        assert parse_size("1GB") == 10**9

    def test_case_insensitive(self):
        assert parse_size("1gib") == GiB

    def test_fractional_value(self):
        assert parse_size("1.5 KiB") == 1536

    def test_bare_b_suffix(self):
        assert parse_size("17B") == 17

    def test_garbage_raises(self):
        with pytest.raises(ValueError):
            parse_size("lots of bytes")

    @given(st.integers(min_value=0, max_value=10**15))
    def test_roundtrip_via_format_is_monotone(self, n):
        # format is lossy (2 decimals) but parse(format(n)) stays within 1%.
        text = format_bytes(n)
        parsed = parse_size(text)
        assert abs(parsed - n) <= max(1.0, 0.01 * n)


class TestFormatDuration:
    def test_milliseconds(self):
        assert format_duration(0.0123) == "12.3 ms"

    def test_seconds(self):
        assert format_duration(51.0) == "51.0 s"

    def test_minutes(self):
        assert format_duration(204.0) == "3.4 min"

    def test_hours(self):
        assert format_duration(7200.0) == "2.00 h"

    def test_negative(self):
        assert format_duration(-51.0) == "-51.0 s"


class TestFormatProbability:
    def test_table2_values(self):
        # These are the exact renderings Table II uses.
        assert format_probability(1e-4) == "1e-4"
        assert format_probability(0.95) == "0.95"
        assert format_probability(1e-15) == "1e-15"
        assert format_probability(1e-6) == "1e-6"

    def test_zero(self):
        assert format_probability(0.0) == "0"

    def test_fixed_point(self):
        assert format_probability(0.5) == "0.5"

    def test_scientific_mantissa(self):
        assert format_probability(3.2e-5) == "3.2e-5"

    @given(st.floats(min_value=1e-30, max_value=1.0, allow_nan=False))
    def test_never_raises(self, p):
        out = format_probability(p)
        assert isinstance(out, str) and out
