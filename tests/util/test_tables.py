"""Unit tests for repro.util.tables."""

import pytest

from repro.util import AsciiTable


class TestAsciiTable:
    def test_basic_render(self):
        t = AsciiTable(["a", "bb"])
        t.add_row([1, 22])
        out = t.render()
        lines = out.splitlines()
        assert lines[0].startswith("a")
        assert "-+-" in lines[1]
        assert lines[2].startswith("1")

    def test_title(self):
        t = AsciiTable(["x"], title="Table II")
        t.add_row(["v"])
        assert t.render().splitlines()[0] == "Table II"

    def test_column_alignment(self):
        t = AsciiTable(["method", "v"])
        t.add_row(["hierarchical", 1])
        t.add_row(["naive", 2])
        lines = t.render().splitlines()
        # Both value columns start at the same offset.
        assert lines[2].index("1") == lines[3].index("2")

    def test_wrong_row_width_raises(self):
        t = AsciiTable(["a", "b"])
        with pytest.raises(ValueError):
            t.add_row([1])

    def test_empty_columns_raises(self):
        with pytest.raises(ValueError):
            AsciiTable([])

    def test_values_stringified(self):
        t = AsciiTable(["a"])
        t.add_row([3.14])
        assert "3.14" in t.render()

    def test_str_dunder(self):
        t = AsciiTable(["a"])
        t.add_row([1])
        assert str(t) == t.render()
