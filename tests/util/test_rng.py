"""Unit tests for repro.util.rng."""

import numpy as np
import pytest

from repro.util import resolve_rng, spawn_rngs


class TestResolveRng:
    def test_none_gives_generator(self):
        assert isinstance(resolve_rng(None), np.random.Generator)

    def test_int_seed_is_deterministic(self):
        a = resolve_rng(123).random(5)
        b = resolve_rng(123).random(5)
        np.testing.assert_array_equal(a, b)

    def test_different_seeds_differ(self):
        a = resolve_rng(1).random(8)
        b = resolve_rng(2).random(8)
        assert not np.array_equal(a, b)

    def test_generator_passthrough(self):
        gen = np.random.default_rng(7)
        assert resolve_rng(gen) is gen

    def test_seed_sequence(self):
        seq = np.random.SeedSequence(99)
        out = resolve_rng(seq)
        assert isinstance(out, np.random.Generator)

    def test_numpy_integer_seed(self):
        out = resolve_rng(np.int64(5))
        assert isinstance(out, np.random.Generator)

    def test_bad_type_raises(self):
        with pytest.raises(TypeError):
            resolve_rng("seed")


class TestSpawnRngs:
    def test_count(self):
        children = spawn_rngs(42, 5)
        assert len(children) == 5

    def test_children_are_independent_streams(self):
        children = spawn_rngs(42, 2)
        a = children[0].random(16)
        b = children[1].random(16)
        assert not np.array_equal(a, b)

    def test_deterministic_given_seed(self):
        a = spawn_rngs(7, 3)[2].random(4)
        b = spawn_rngs(7, 3)[2].random(4)
        np.testing.assert_array_equal(a, b)

    def test_zero_children(self):
        assert spawn_rngs(1, 0) == []

    def test_negative_raises(self):
        with pytest.raises(ValueError):
            spawn_rngs(1, -1)
