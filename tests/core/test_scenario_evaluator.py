"""Scenario + evaluator tests: Table II values and the headline claim."""

import pytest

from repro.clustering import naive_clustering
from repro.core import (
    ClusteringEvaluator,
    paper_scenario,
    reliability_scenario,
)


@pytest.fixture(scope="module")
def evaluator():
    return ClusteringEvaluator(paper_scenario(iterations=10))


@pytest.fixture(scope="module")
def report(evaluator):
    return evaluator.evaluate_all()


class TestScenario:
    def test_paper_scenario_shape(self):
        s = paper_scenario(iterations=5)
        assert s.machine.nnodes == 64
        assert s.placement.nranks == 1024
        assert s.graph.n == 1024
        assert s.node_comm_graph().n == 64

    def test_reliability_scenario_shape(self):
        s = reliability_scenario(iterations=5)
        assert s.machine.nnodes == 128
        assert s.machine.procs_per_node == 8

    def test_traced_scenario_equals_synthetic(self):
        synth = paper_scenario(iterations=2)
        traced = paper_scenario(iterations=2, traced=True)
        # Halo traffic identical; traced adds only the tiny allreduce bytes.
        diff = traced.graph.matrix - synth.graph.matrix
        assert (diff >= 0).all()
        assert diff.sum() / synth.graph.matrix.sum() < 1e-3


class TestTable2Reproduction:
    """Assert the quantitative agreement documented in EXPERIMENTS.md."""

    def test_naive_row(self, report):
        s = report.score_named("naive-32")
        assert s.logging_fraction == pytest.approx(0.040, abs=0.01)  # paper 3.5 %
        assert s.recovery_fraction == pytest.approx(0.031, abs=0.002)  # 3.1 %
        assert s.encoding_s_per_gb == pytest.approx(204.0)  # 204 s
        assert 3e-5 < s.prob_catastrophic < 3e-4  # 1e-4

    def test_size_guided_row(self, report):
        s = report.score_named("size-guided-8")
        assert s.logging_fraction == pytest.approx(0.133, abs=0.01)  # 12.9 %
        assert s.encoding_s_per_gb == pytest.approx(51.0)  # 51 s
        assert s.prob_catastrophic == pytest.approx(0.95, abs=0.01)  # 0.95

    def test_distributed_row(self, report):
        s = report.score_named("distributed-16")
        assert s.logging_fraction > 0.9  # paper: 100 %
        assert s.recovery_fraction == pytest.approx(0.25)  # 25 %
        assert s.encoding_s_per_gb == pytest.approx(102.0)  # 102 s
        assert s.prob_catastrophic < 1e-13  # 1e-15

    def test_hierarchical_row(self, report):
        s = report.score_named("hierarchical-64-4")
        assert s.logging_fraction == pytest.approx(0.019, abs=0.005)  # 1.9 %
        assert s.recovery_fraction == pytest.approx(0.0625)  # 6.25 %
        assert s.encoding_s_per_gb == pytest.approx(25.5)  # 25 s
        assert 3e-7 < s.prob_catastrophic < 3e-5  # 1e-6

    def test_headline_claim_only_hierarchical_satisfies(self, report):
        """'the hierarchical clustering ... is the only technique that
        reaches all the requirements' (§VII)."""
        assert report.satisfying() == ["hierarchical-64-4"]

    def test_normalized_radar(self, report):
        radar = report.normalized()
        hier = radar["hierarchical-64-4"]
        assert all(v <= 1.0 for v in hier.values())
        assert radar["naive-32"]["encoding"] > 1.0
        assert radar["size-guided-8"]["reliability"] > 1.0
        assert radar["distributed-16"]["logging"] > 1.0

    def test_table_rendering(self, report):
        text = report.to_table()
        assert "hierarchical-64-4" in text
        assert "naive-32" in text

    def test_score_lookup_missing(self, report):
        with pytest.raises(KeyError):
            report.score_named("nope")


class TestEvaluatorMechanics:
    def test_typical_l2_size(self, evaluator):
        c = naive_clustering(1024, 16)
        assert evaluator.typical_l2_size(c) == 16

    def test_custom_clustering_set(self, evaluator):
        report = evaluator.evaluate_all([naive_clustering(1024, 64)])
        assert len(report.scores) == 1
        assert report.scores[0].name == "naive-64"

    def test_from_scenario_alias(self):
        ev = ClusteringEvaluator.from_scenario(paper_scenario(iterations=2))
        assert isinstance(ev, ClusteringEvaluator)


class TestReportSerialization:
    def test_to_dict_structure(self, report):
        data = report.to_dict()
        assert set(data) == {"baseline", "scores"}
        assert len(data["scores"]) == 4
        hier = next(
            s for s in data["scores"] if s["name"] == "hierarchical-64-4"
        )
        assert hier["satisfies_baseline"] is True
        assert 0 < hier["logging_fraction"] < 0.05

    def test_save_json_roundtrip(self, report, tmp_path):
        import json

        path = tmp_path / "table2.json"
        report.save_json(path)
        loaded = json.loads(path.read_text())
        assert loaded == report.to_dict()

    def test_only_one_compliant_entry(self, report):
        compliant = [
            s["name"] for s in report.to_dict()["scores"]
            if s["satisfies_baseline"]
        ]
        assert compliant == ["hierarchical-64-4"]
