"""ReliabilityQuery API tests: validation, wire format, exact equivalence.

The query layer promises *bit-equality* with the loose-kwarg entry points
it replaced — same seed, same draws, same floats — so the equivalence
tests here assert ``==``, not ``approx``.
"""

import pickle
import warnings
from dataclasses import replace

import pytest

from repro.clustering import distributed_clustering, naive_clustering
from repro.core import paper_scenario
from repro.core.montecarlo import montecarlo_scores
from repro.core.query import (
    BatchStats,
    ClusteringSpec,
    MachineSpec,
    QueryResult,
    ReliabilityQuery,
    assemble_streamed,
    build_tables,
    iter_waste_curve,
    query_for,
    resolve_query,
    run_query,
    run_query_batch,
)
from repro.models import CampaignConfig, CampaignSimulator


@pytest.fixture(scope="module")
def scenario():
    return paper_scenario(iterations=5)


def small_query(**kw):
    defaults = dict(
        metric="montecarlo",
        machine=MachineSpec(nnodes=8, procs_per_node=2),
        clustering=ClusteringSpec(strategy="naive", cluster_size=4),
        n_samples=200,
        seed=3,
    )
    defaults.update(kw)
    return ReliabilityQuery(**defaults)


class TestValidation:
    def test_unknown_metric(self):
        with pytest.raises(ValueError, match="metric"):
            small_query(metric="nope")

    def test_unknown_encoding(self):
        with pytest.raises(ValueError, match="encoding"):
            small_query(encoding="raid5")

    def test_campaign_metrics_require_rs(self):
        with pytest.raises(ValueError, match="rs"):
            small_query(metric="expected_waste", encoding="xor")

    def test_seed_must_be_int(self):
        with pytest.raises(ValueError):
            small_query(seed=1.5)
        with pytest.raises(ValueError):
            small_query(seed=True)

    def test_counts_positive(self):
        with pytest.raises(ValueError):
            small_query(n_samples=0)
        with pytest.raises(ValueError):
            small_query(metric="expected_waste", n_campaigns=0)

    def test_waste_curve_needs_sweep(self):
        with pytest.raises(ValueError, match="sweep"):
            small_query(metric="waste_curve")

    def test_sweep_rejects_nonfinite(self):
        with pytest.raises(ValueError):
            small_query(
                metric="waste_curve", sweep=(600.0, float("nan"))
            )

    def test_survival_sweep_must_be_integral(self):
        with pytest.raises(ValueError):
            small_query(metric="survival", sweep=(1.0, 2.5))

    def test_labels_strategy_requires_labels(self):
        with pytest.raises(ValueError):
            ClusteringSpec(strategy="labels")
        with pytest.raises(ValueError):
            ClusteringSpec(strategy="naive", l1=(0, 0, 1, 1))

    def test_machine_preset_checked(self):
        with pytest.raises(ValueError):
            MachineSpec(preset="bluegene")

    def test_clustering_length_checked_at_build(self):
        machine = MachineSpec(nnodes=8, procs_per_node=2)
        spec = ClusteringSpec(strategy="labels", l1=(0, 1))
        query = small_query(machine=machine, clustering=spec)
        with pytest.raises(ValueError):
            build_tables(query)


class TestWireFormat:
    def test_json_roundtrip(self):
        query = small_query(
            metric="waste_curve", sweep=(600.0, 1200.0), n_campaigns=2
        )
        again = ReliabilityQuery.from_json(query.to_json())
        assert again == query

    def test_labels_roundtrip(self):
        spec = ClusteringSpec(
            strategy="labels", name="custom", l1=tuple([0] * 8 + [1] * 8)
        )
        query = small_query(clustering=spec)
        assert ReliabilityQuery.from_json(query.to_json()) == query

    def test_unknown_top_level_field_rejected(self):
        data = small_query().to_dict()
        data["n_sampels"] = 100
        with pytest.raises(ValueError, match="n_sampels"):
            ReliabilityQuery.from_dict(data)

    def test_unknown_nested_field_rejected(self):
        data = small_query().to_dict()
        data["machine"]["nodes"] = 8
        with pytest.raises(ValueError, match="nodes"):
            ReliabilityQuery.from_dict(data)

    def test_wrong_version_rejected(self):
        data = small_query().to_dict()
        data["v"] = 99
        with pytest.raises(ValueError, match="version"):
            ReliabilityQuery.from_dict(data)

    def test_bad_json_is_value_error(self):
        with pytest.raises(ValueError):
            ReliabilityQuery.from_json("{not json")

    def test_result_roundtrip(self):
        result = run_query(small_query())
        again = QueryResult.from_json(result.to_json())
        assert again == result

    def test_result_value_lookup(self):
        result = run_query(small_query())
        assert result.value("n_samples") == 200.0
        with pytest.raises(KeyError, match="restart_fraction_mean"):
            result.value("nope")

    def test_query_pickles_and_hashes(self):
        query = small_query()
        assert pickle.loads(pickle.dumps(query)) == query
        assert hash(query) == hash(small_query())


class TestExactEquivalence:
    """The API redesign's core promise: shims and queries draw the same
    streams, so results are float-for-float identical."""

    def test_montecarlo_matches_legacy(self, scenario):
        clustering = distributed_clustering(scenario.placement, 16)
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            legacy = montecarlo_scores(
                scenario, clustering, n_samples=800, rng=17
            )
        result = run_query(
            query_for(scenario, clustering, n_samples=800, seed=17)
        )
        assert result.value("restart_fraction_mean") == legacy.restart_fraction_mean
        assert result.value("restart_fraction_p95") == legacy.restart_fraction_p95
        assert result.value("catastrophic_rate") == legacy.catastrophic_rate
        assert result.value("soft_error_share") == legacy.soft_error_share

    def test_expected_waste_matches_legacy(self, scenario):
        clustering = naive_clustering(1024, 32)
        config = CampaignConfig(
            horizon_s=7 * 24 * 3600.0,
            checkpoint_interval_s=1800.0,
            node_mtbf_s=0.25 * 365 * 24 * 3600.0,
        )
        sim = CampaignSimulator(scenario.machine, config)
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            legacy = sim.expected_waste(clustering, n_campaigns=2, rng=11)
        result = run_query(
            query_for(
                scenario,
                clustering,
                metric="expected_waste",
                campaign=config,
                n_campaigns=2,
                seed=11,
            )
        )
        assert result.value("expected_waste") == legacy

    def test_campaign_matches_simulator_run(self, scenario):
        clustering = naive_clustering(1024, 32)
        config = CampaignConfig(
            horizon_s=7 * 24 * 3600.0,
            checkpoint_interval_s=1800.0,
            node_mtbf_s=0.25 * 365 * 24 * 3600.0,
        )
        sim = CampaignSimulator(scenario.machine, config)
        direct = sim.run(clustering, rng=5)
        result = run_query(
            query_for(
                scenario,
                clustering,
                metric="campaign",
                campaign=config,
                seed=5,
            )
        )
        assert result.value("waste_fraction") == direct.waste_fraction
        assert result.value("n_failures") == direct.n_failures
        assert result.value("n_catastrophic") == direct.n_catastrophic

    def test_deterministic(self):
        assert run_query(small_query()) == run_query(small_query())


class TestCoalescing:
    def test_batch_matches_individual(self):
        queries = [small_query(seed=s) for s in range(4)] + [
            small_query(
                clustering=ClusteringSpec(strategy="naive", cluster_size=2),
                seed=9,
            )
        ]
        individual = [run_query(q) for q in queries]
        batched, stats = run_query_batch(queries)
        assert batched == individual
        assert stats == BatchStats(queries=5, scoring_passes=2, coalesced=4)

    def test_batch_reports_per_query_errors(self):
        good = small_query()
        bad = small_query(
            clustering=ClusteringSpec(strategy="labels", l1=(0, 1))
        )
        results, _ = run_query_batch([bad, good], return_exceptions=True)
        assert isinstance(results[0], ValueError)
        assert results[1] == run_query(good)

    def test_non_mc_metrics_do_not_coalesce(self):
        queries = [
            small_query(metric="expected_waste", n_campaigns=1, seed=s)
            for s in range(2)
        ]
        _, stats = run_query_batch(queries)
        assert stats.coalesced == 0


class TestStreaming:
    def test_waste_curve_chunks_assemble_exactly(self):
        sweep = tuple(600.0 * (i + 1) for i in range(6))
        query = small_query(
            metric="waste_curve", sweep=sweep, n_campaigns=1, seed=2
        )
        whole = run_query(query)
        parts = [
            run_query(replace(query, sweep=sweep[i : i + 2]))
            for i in range(0, len(sweep), 2)
        ]
        assert assemble_streamed(query, parts) == whole

    def test_iter_waste_curve_matches_run_query(self):
        sweep = (600.0, 1200.0, 2400.0)
        query = small_query(
            metric="waste_curve", sweep=sweep, n_campaigns=1, seed=2
        )
        points = list(iter_waste_curve(query, resolve_query(query)))
        assert tuple(points) == run_query(query).curve

    def test_survival_curve_monotone(self):
        result = run_query(small_query(metric="survival"))
        survivals = [y for _, y in result.curve]
        assert survivals == sorted(survivals, reverse=True)


class TestQueryFor:
    def test_tolerance_maps_to_encoding(self, scenario):
        from repro.failures.catastrophic import rs_half_tolerance, xor_tolerance

        clustering = naive_clustering(1024, 32)
        assert (
            query_for(scenario, clustering, tolerance=rs_half_tolerance).encoding
            == "rs"
        )
        assert (
            query_for(scenario, clustering, tolerance=xor_tolerance).encoding
            == "xor"
        )

    def test_tolerance_and_encoding_conflict(self, scenario):
        from repro.failures.catastrophic import xor_tolerance

        with pytest.raises(TypeError):
            query_for(
                scenario,
                naive_clustering(1024, 32),
                tolerance=xor_tolerance,
                encoding="xor",
            )

    def test_resolve_query_caches_by_table_key(self):
        a = small_query(seed=0)
        b = small_query(seed=99)  # same tables, different seed
        assert resolve_query(a) is resolve_query(b)


class TestShims:
    def test_montecarlo_scores_warns(self, scenario):
        with pytest.warns(DeprecationWarning, match="ReliabilityQuery"):
            montecarlo_scores(
                scenario, naive_clustering(1024, 32), n_samples=10, rng=0
            )

    def test_expected_waste_warns(self, scenario):
        sim = CampaignSimulator(
            scenario.machine,
            CampaignConfig(
                horizon_s=24 * 3600.0,
                checkpoint_interval_s=1800.0,
                node_mtbf_s=365 * 24 * 3600.0,
            ),
        )
        with pytest.warns(DeprecationWarning, match="ReliabilityQuery"):
            sim.expected_waste(naive_clustering(1024, 32), n_campaigns=1, rng=0)
