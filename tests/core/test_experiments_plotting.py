"""Experiment-driver and plotting tests (small-scale figure shapes)."""

import numpy as np
import pytest

from repro.core import (
    ascii_bars,
    ascii_heatmap,
    experiment_fig3,
    experiment_fig4a,
    experiment_fig4bc,
    experiment_fig5ab,
    experiment_table1,
    paper_scenario,
    radar_table,
)


@pytest.fixture(scope="module")
def scenario():
    return paper_scenario(iterations=10)


class TestFig3:
    def test_sweep_shapes(self, scenario):
        study = experiment_fig3(scenario, sizes=(4, 8, 16, 32))
        assert len(study.logged_fraction) == 4
        # Logging falls with size; encoding grows with size.
        assert study.logged_fraction == sorted(study.logged_fraction, reverse=True)
        assert study.encoding_s_per_gb == sorted(study.encoding_s_per_gb)

    def test_sweet_spot_is_32(self, scenario):
        """Fig. 3a: 'there is a sweet spot for clusters of 32 processes'."""
        study = experiment_fig3(scenario, sizes=(2, 4, 8, 16, 32, 64, 128, 256))
        assert study.sweet_spot_3a() == 32

    def test_paper_values_at_key_sizes(self, scenario):
        study = experiment_fig3(scenario, sizes=(4, 8, 32))
        # ~25 % at 4, ~13 % at 8, < 4 % at 32 (Fig. 3 narrative).
        assert study.logged_fraction[0] == pytest.approx(0.25, abs=0.03)
        assert study.logged_fraction[1] == pytest.approx(0.13, abs=0.02)
        assert study.logged_fraction[2] < 0.04 + 1e-9

    def test_render(self, scenario):
        out = experiment_fig3(scenario, sizes=(8, 32)).render()
        assert "cluster size" in out and "32" in out


class TestFig4:
    def test_fig4a_non_distributed_orders_worse(self):
        study = experiment_fig4a(sizes=(4, 8, 16))
        for non, dist in zip(
            study.reliability_non_distributed, study.reliability_distributed
        ):
            assert non > dist * 1e3

    def test_fig4b_distribution_explodes_logging(self, scenario):
        study = experiment_fig4bc(scenario, sizes=(16, 32))
        for non, dist in zip(
            study.logging_non_distributed, study.logging_distributed
        ):
            assert dist > 0.9  # 'very high number of messages logged'
            assert non < 0.2

    def test_fig4c_restart_3_vs_50_percent(self, scenario):
        """Fig. 4c: at 32-proc clusters, 3 % non-distributed vs 50 %."""
        study = experiment_fig4bc(scenario, sizes=(32,))
        assert study.restart_non_distributed[0] == pytest.approx(0.031, abs=0.002)
        assert study.restart_distributed[0] == pytest.approx(0.50)

    def test_render(self):
        out = experiment_fig4a(sizes=(4, 8)).render()
        assert "P[cat]" in out


class TestFig5ab:
    @pytest.fixture(scope="class")
    def study(self):
        # Scaled-down §V execution: 16 nodes x 4 app procs (+encoders) = 80.
        return experiment_fig5ab(
            nodes=16, app_per_node=4, iterations=12, checkpoint_every=6
        )

    def test_structural_features(self, study):
        halo = study.kind_matrices["halo"]
        ready = study.kind_matrices["fti-ready"]
        ring = study.kind_matrices["fti-encode"]
        encoders = np.array(study.encoder_ranks)
        # Diagonals interrupted at encoder ranks.
        assert halo[encoders, :].sum() == 0
        # Encoder rows carry the ready notifications.
        assert all(ready[e, :].sum() > 0 for e in encoders)
        # Encoder-to-encoder ring points exist.
        assert ring.sum() > 0

    def test_zoom_covers_first_ranks(self, study):
        study.zoom_size = 20
        assert study.zoom.shape == (20, 20)

    def test_renderers(self, study):
        full = study.render_full(max_size=40)
        zoomed = study.render_zoom()
        assert "Fig. 5a" in full and "Fig. 5b" in zoomed
        assert len(full.splitlines()) >= 40


class TestTable1:
    def test_contains_table1_facts(self):
        out = experiment_table1()
        assert "1408" in out
        assert "360" in out  # SSD write MB/s
        assert "Lustre" in out


class TestPlotting:
    def test_heatmap_downsamples(self):
        m = np.random.default_rng(0).random((100, 100))
        out = ascii_heatmap(m, max_size=25)
        assert len(out.splitlines()) == 25

    def test_heatmap_empty(self):
        out = ascii_heatmap(np.zeros((4, 4)))
        assert set(out.replace("\n", "")) == {" "}

    def test_heatmap_validation(self):
        with pytest.raises(ValueError):
            ascii_heatmap(np.zeros((2, 3)))

    def test_bars_basic(self):
        out = ascii_bars(["a", "bb"], [1.0, 2.0], width=10, unit="%")
        lines = out.splitlines()
        assert lines[1].count("#") == 10
        assert lines[0].count("#") == 5

    def test_bars_log_scale(self):
        out = ascii_bars(["x", "y"], [1e-6, 1e-1], log_scale=True)
        assert "#" in out

    def test_bars_validation(self):
        with pytest.raises(ValueError):
            ascii_bars(["a"], [1.0, 2.0])
        assert ascii_bars([], []) == ""

    def test_radar_table_marks_inside(self):
        out = radar_table(
            {
                "good": {"logging": 0.1, "recovery": 0.2, "encoding": 0.3, "reliability": 0.4},
                "bad": {"logging": 2.0, "recovery": 0.2, "encoding": 0.3, "reliability": 0.4},
            }
        )
        lines = out.splitlines()
        good_line = next(l for l in lines if l.startswith("good"))
        bad_line = next(l for l in lines if l.startswith("bad"))
        assert "yes" in good_line and "NO" in bad_line
