"""Property tests for the precomputed evaluation tables.

Every lookup structure in :mod:`repro.core.tables` must agree entry by
entry with the scalar model it accelerates — these tests pin the batched
engine to the per-event reference implementations.
"""

import numpy as np
import pytest

from repro.clustering import (
    Clustering,
    distributed_clustering,
    naive_clustering,
    size_guided_clustering,
)
from repro.core.tables import (
    RestartTables,
    catastrophic_tables,
    restart_tables,
)
from repro.failures import (
    CatastrophicModel,
    FailureEvent,
    MonteCarloEstimator,
    rs_half_tolerance,
    xor_tolerance,
)
from repro.machine import BlockPlacement, RoundRobinPlacement
from repro.models import (
    restart_fraction_for_node,
    restart_set_for_nodes,
)


@pytest.fixture(scope="module")
def placement():
    return BlockPlacement(64, 16)


def strategies(placement):
    return [
        naive_clustering(1024, 32),
        size_guided_clustering(1024, 8),
        distributed_clustering(placement, 16),
    ]


class TestRestartTables:
    def test_node_restart_fraction_matches_scalar(self, placement):
        for c in strategies(placement):
            t = restart_tables(c, placement)
            for node in range(placement.nnodes):
                expected = (
                    restart_set_for_nodes(c, placement, [node]).size / c.n
                )
                assert t.node_restart_fraction[node] == pytest.approx(expected)

    @pytest.mark.parametrize("f", [1, 2, 3, 5, 12])
    def test_run_fractions_match_union_rule(self, placement, f):
        c = distributed_clustering(placement, 16)
        t = restart_tables(c, placement)
        fractions = t.run_restart_fraction(f)
        assert fractions.shape == (placement.nnodes - f + 1,)
        for start in (0, 7, placement.nnodes - f):
            nodes = range(start, start + f)
            expected = restart_set_for_nodes(c, placement, nodes).size / c.n
            assert fractions[start] == pytest.approx(expected)

    def test_run_longer_than_machine_is_clamped(self, placement):
        c = naive_clustering(1024, 32)
        t = restart_tables(c, placement)
        assert t.run_restart_fraction(10_000).shape == (1,)
        assert t.run_restart_fraction(10_000)[0] == pytest.approx(1.0)

    def test_soft_fraction_is_own_cluster(self, placement):
        c = size_guided_clustering(1024, 8)
        t = restart_tables(c, placement)
        for rank in (0, 17, 1023):
            expected = c.l1_members(c.l1_of(rank)).size / c.n
            assert t.soft_restart_fraction[rank] == pytest.approx(expected)

    def test_ranks_on_runs(self, placement):
        c = naive_clustering(1024, 32)
        t = restart_tables(c, placement)
        starts = np.array([0, 10, 62])
        lengths = np.array([1, 3, 2])
        np.testing.assert_array_equal(
            t.ranks_on_runs(starts, lengths), [16, 48, 32]
        )

    def test_round_robin_placement(self):
        placement = RoundRobinPlacement(16, 8)
        c = naive_clustering(128, 8)
        t = restart_tables(c, placement)
        for node in range(placement.nnodes):
            expected = restart_fraction_for_node(c, placement, node)
            assert t.node_restart_fraction[node] == pytest.approx(expected)

    def test_size_mismatch_raises(self, placement):
        with pytest.raises(ValueError):
            RestartTables(naive_clustering(64, 8), placement)


class TestCatastrophicTables:
    def test_run_verdicts_match_event_predicate(self, placement):
        model = CatastrophicModel(placement)
        for c in strategies(placement):
            t = catastrophic_tables(c, placement, model.tolerance)
            for f in (1, 3):
                verdicts = t.run_catastrophic(f)
                for start in (0, 31, placement.nnodes - f):
                    event = FailureEvent(
                        kind="node", nodes=tuple(range(start, start + f))
                    )
                    assert verdicts[start] == model.event_is_catastrophic(
                        c, event
                    )

    def test_soft_flags_match_event_predicate(self, placement):
        model = CatastrophicModel(placement, tolerance=xor_tolerance)
        c = size_guided_clustering(1024, 8)
        t = catastrophic_tables(c, placement, xor_tolerance)
        for rank in (0, 500, 1023):
            event = FailureEvent(kind="soft", process=rank)
            assert bool(t.soft_catastrophic[rank]) == model.event_is_catastrophic(
                c, event
            )

    def test_tolerance_array_precomputed(self, placement):
        c = distributed_clustering(placement, 16)
        t = catastrophic_tables(c, placement, rs_half_tolerance)
        np.testing.assert_array_equal(
            t.tolerances, [rs_half_tolerance(int(s)) for s in c.l2_sizes()]
        )

    def test_membership_matches_placement(self, placement):
        c = naive_clustering(1024, 32)
        t = catastrophic_tables(c, placement, rs_half_tolerance)
        assert t.membership.shape == (c.n_l2_clusters, placement.nnodes)
        assert t.membership.sum() == c.n
        # Block placement: cluster 0 = ranks 0..31 = nodes 0 and 1.
        assert t.membership[0, 0] == 16 and t.membership[0, 1] == 16
        assert t.membership[0, 2:].sum() == 0


class TestBatchScoring:
    def test_batch_matches_scalar_event_loop(self, placement):
        model = CatastrophicModel(placement)
        sampler = MonteCarloEstimator(model, rng=123)
        batch = sampler.sample_events(400)
        for c in strategies(placement):
            t = restart_tables(c, placement)
            fractions = t.batch_restart_fractions(batch)
            verdicts = model.events_are_catastrophic(c, batch)
            for i, event in enumerate(batch.events()):
                if event.kind == "soft":
                    expected = c.l1_members(c.l1_of(event.process)).size / c.n
                else:
                    expected = (
                        restart_set_for_nodes(c, placement, event.nodes).size
                        / c.n
                    )
                assert fractions[i] == pytest.approx(expected), i
                assert bool(verdicts[i]) == model.event_is_catastrophic(
                    c, event
                ), i


class TestCaching:
    def test_tables_are_shared_per_placement(self, placement):
        c = naive_clustering(1024, 32)
        assert restart_tables(c, placement) is restart_tables(c, placement)
        t1 = catastrophic_tables(c, placement, rs_half_tolerance)
        assert t1 is catastrophic_tables(c, placement, rs_half_tolerance)
        # A different tolerance is a different table.
        t2 = catastrophic_tables(c, placement, xor_tolerance)
        assert t2 is not t1

    def test_model_does_not_rebuild_membership(self, placement):
        model = CatastrophicModel(placement)
        c = naive_clustering(1024, 32)
        m1 = model._membership_matrix(c)
        m2 = model._membership_matrix(c)
        assert m1 is m2

    def test_clustering_cached_hook(self):
        c = Clustering("t", np.array([0, 0, 1, 1]))
        calls = []

        def build():
            calls.append(1)
            return "value"

        assert c.cached("k", build) == "value"
        assert c.cached("k", build) == "value"
        assert len(calls) == 1

    def test_sizes_cached(self):
        c = Clustering("t", np.array([0, 0, 1, 1]))
        assert c.l1_sizes() is c.l1_sizes()
        assert c.l2_sizes() is c.l2_sizes()

    def test_placement_node_array_cached(self, placement):
        a = placement.node_array()
        assert a is placement.node_array()
        np.testing.assert_array_equal(
            a, [placement.node_of_rank(r) for r in range(placement.nranks)]
        )
