"""Monte-Carlo validation tests: sampled vs. analytic scores.

The batched engine (``montecarlo_scores``) and the per-event reference
path (``montecarlo_scores_scalar``) consume the RNG stream differently, so
equivalence is asserted *statistically*: same seed, same sample count,
score summaries within tight sampling tolerance.
"""

import pytest

from repro.clustering import (
    distributed_clustering,
    naive_clustering,
    size_guided_clustering,
)
from repro.core import (
    montecarlo_scores,
    montecarlo_scores_scalar,
    paper_scenario,
    validate_against_analytic,
)


@pytest.fixture(scope="module")
def scenario():
    return paper_scenario(iterations=5)


class TestMonteCarloScores:
    def test_naive_restart_fraction(self, scenario):
        mc = montecarlo_scores(
            scenario, naive_clustering(1024, 32), n_samples=500, rng=1
        )
        # Node-aligned 32-clusters: every failure restarts exactly 1 cluster.
        assert mc.restart_fraction_mean == pytest.approx(0.03125)
        assert mc.restart_fraction_p95 == pytest.approx(0.03125)

    def test_distributed_restart_heavier_under_node_failures(self, scenario):
        mc = montecarlo_scores(
            scenario, distributed_clustering(scenario.placement, 16),
            n_samples=500, rng=2,
        )
        # Mixture: ~95 % node failures at 25 %, ~5 % soft errors at 1.56 %.
        assert 0.2 < mc.restart_fraction_mean < 0.26
        assert mc.restart_fraction_p95 == pytest.approx(0.25)

    def test_size_guided_catastrophic_rate(self, scenario):
        mc = montecarlo_scores(
            scenario, size_guided_clustering(1024, 8), n_samples=1500, rng=3
        )
        assert mc.catastrophic_rate == pytest.approx(0.95, abs=0.03)

    def test_soft_share_matches_taxonomy(self, scenario):
        mc = montecarlo_scores(
            scenario, naive_clustering(1024, 32), n_samples=2000, rng=4
        )
        assert mc.soft_error_share == pytest.approx(0.05, abs=0.02)

    def test_summary_text(self, scenario):
        mc = montecarlo_scores(
            scenario, naive_clustering(1024, 32), n_samples=50, rng=0
        )
        assert "naive-32" in mc.summary()

    def test_sample_validation(self, scenario):
        with pytest.raises(ValueError):
            montecarlo_scores(
                scenario, naive_clustering(1024, 32), n_samples=0
            )


class TestBatchedScalarEquivalence:
    """Seed-for-seed cross-check of the batched engine vs the reference."""

    @pytest.mark.parametrize(
        "make",
        [
            lambda p: naive_clustering(1024, 32),
            lambda p: size_guided_clustering(1024, 8),
            lambda p: distributed_clustering(p, 16),
        ],
    )
    def test_statistics_agree_at_fixed_seed(self, scenario, make):
        clustering = make(scenario.placement)
        batched = montecarlo_scores(
            scenario, clustering, n_samples=1500, rng=21
        )
        scalar = montecarlo_scores_scalar(
            scenario, clustering, n_samples=1500, rng=21
        )
        assert batched.name == scalar.name
        assert batched.n_samples == scalar.n_samples == 1500
        assert batched.restart_fraction_mean == pytest.approx(
            scalar.restart_fraction_mean, abs=0.01
        )
        assert batched.restart_fraction_p95 == pytest.approx(
            scalar.restart_fraction_p95, abs=0.01
        )
        assert batched.catastrophic_rate == pytest.approx(
            scalar.catastrophic_rate, abs=0.03
        )
        assert batched.soft_error_share == pytest.approx(
            scalar.soft_error_share, abs=0.02
        )

    def test_scalar_path_validates_input(self, scenario):
        with pytest.raises(ValueError):
            montecarlo_scores_scalar(
                scenario, naive_clustering(1024, 32), n_samples=0
            )

    def test_both_paths_deterministic_under_seed(self, scenario):
        clustering = distributed_clustering(scenario.placement, 16)
        for scores in (montecarlo_scores, montecarlo_scores_scalar):
            a = scores(scenario, clustering, n_samples=300, rng=5)
            b = scores(scenario, clustering, n_samples=300, rng=5)
            assert a == b


class TestValidateAgainstAnalytic:
    @pytest.mark.parametrize(
        "make",
        [
            lambda p: naive_clustering(1024, 32),
            lambda p: size_guided_clustering(1024, 8),
            lambda p: distributed_clustering(p, 16),
        ],
    )
    def test_agreement(self, scenario, make):
        out = validate_against_analytic(
            scenario, make(scenario.placement), n_samples=800, rng=7
        )
        assert out["restart_deviation"] <= 0.02
        # Catastrophic rates agree within the sampling resolution.
        assert abs(out["mc_catastrophic"] - out["analytic_catastrophic"]) < 0.05

    def test_detects_disagreement(self, scenario):
        with pytest.raises(AssertionError):
            validate_against_analytic(
                scenario,
                naive_clustering(1024, 32),
                n_samples=200,
                rng=1,
                restart_tolerance=-1.0,  # force failure
            )
