"""Property tests for the per-channel deque matching engine.

The matcher keeps unexpected messages and pending receives in deques keyed
by ``(source, tag)`` with global posting stamps; wildcard receives pick the
matching channel head with the smallest stamp. These properties pin the
MPI semantics that structure must preserve under arbitrary schedules:
exactly-once delivery, per-(sender, tag) non-overtaking through any mix of
exact and wildcard patterns, and schedule determinism.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.simmpi import ANY_SOURCE, ANY_TAG, run_program

NRANKS = 4

# A schedule is a list of (src, dst, tag, value) sends among 4 ranks, plus
# one receive-pattern mode per receiving rank. Every mode issues exactly as
# many receives as the rank's inbox holds and is satisfiable by counting:
# wildcards accept anything, per-source patterns follow channel order, and
# per-tag patterns request each tag exactly as often as it was sent.
sends = st.lists(
    st.tuples(
        st.integers(0, NRANKS - 1),
        st.integers(0, NRANKS - 1),
        st.integers(0, 2),
        st.integers(0, 1000),
    ),
    min_size=0,
    max_size=40,
)
modes = st.lists(
    st.sampled_from(["exact", "any_source", "any_tag", "wildcard"]),
    min_size=NRANKS,
    max_size=NRANKS,
)


def _recv_plan(inbox: list[tuple[int, int, int]], mode: str):
    """Receive patterns for one rank's inbox (list of (src, tag, value))."""
    if mode == "exact":
        # Per (src, tag) channel in channel order: fully determined.
        return [(src, tag) for src, tag, _ in inbox]
    if mode == "any_source":
        return [(ANY_SOURCE, tag) for _, tag, _ in inbox]
    if mode == "any_tag":
        return [(src, ANY_TAG) for src, _, _ in inbox]
    return [(ANY_SOURCE, ANY_TAG)] * len(inbox)


def _run_schedule(schedule, mode_per_rank):
    outgoing = {r: [] for r in range(NRANKS)}
    inbox = {r: [] for r in range(NRANKS)}
    for src, dst, tag, value in schedule:
        outgoing[src].append((dst, tag, value))
        inbox[dst].append((src, tag, value))
    plans = {
        r: _recv_plan(inbox[r], mode_per_rank[r]) for r in range(NRANKS)
    }

    def program(ctx):
        comm = ctx.comm
        for dst, tag, value in outgoing[ctx.rank]:
            yield from comm.isend((ctx.rank, tag, value), dest=dst, tag=tag)
        received = []
        for source, tag in plans[ctx.rank]:
            payload, status = yield from comm.recv_status(source=source, tag=tag)
            received.append((status.source, status.tag, payload))
        return received

    return run_program(program, NRANKS), inbox


@settings(deadline=None, max_examples=80)
@given(schedule=sends, mode_per_rank=modes)
def test_exactly_once_delivery_any_pattern_mix(schedule, mode_per_rank):
    """Every sent message is received exactly once, metadata intact."""
    results, inbox = _run_schedule(schedule, mode_per_rank)
    for rank in range(NRANKS):
        got = sorted(
            (src, tag, payload[2]) for src, tag, payload in results[rank]
        )
        want = sorted(inbox[rank])
        assert got == want, f"rank {rank} inbox mismatch under {mode_per_rank[rank]}"
        # Status metadata must agree with the payload's provenance.
        for src, tag, payload in results[rank]:
            assert payload[0] == src and payload[1] == tag


@settings(deadline=None, max_examples=80)
@given(schedule=sends, mode_per_rank=modes)
def test_non_overtaking_per_sender_and_tag(schedule, mode_per_rank):
    """Same-(src, tag) messages arrive in send order through any pattern."""
    results, inbox = _run_schedule(schedule, mode_per_rank)
    for rank in range(NRANKS):
        seen: dict[tuple[int, int], list[int]] = {}
        for src, tag, payload in results[rank]:
            seen.setdefault((src, tag), []).append(payload[2])
        sent: dict[tuple[int, int], list[int]] = {}
        for src, tag, value in inbox[rank]:
            sent.setdefault((src, tag), []).append(value)
        for channel, values in seen.items():
            assert values == sent[channel], (
                f"channel {channel} reordered at rank {rank} "
                f"({mode_per_rank[rank]} receives)"
            )


@settings(deadline=None, max_examples=40)
@given(schedule=sends, mode_per_rank=modes)
def test_schedule_determinism(schedule, mode_per_rank):
    """The batched scheduler + deque matcher is a pure function."""
    first, _ = _run_schedule(schedule, mode_per_rank)
    second, _ = _run_schedule(schedule, mode_per_rank)
    assert first == second


def test_wildcard_takes_earliest_posted_message():
    """A both-wildcard receive consumes the earliest unexpected message even
    when a later channel also matches — posting-stamp arbitration."""

    def program(ctx):
        comm = ctx.comm
        if ctx.rank == 0:
            yield from comm.isend("early", dest=2, tag=5)
            return None
        if ctx.rank == 1:
            # Rank 1 runs after rank 0 in the first batch, so its message
            # is posted later.
            yield from comm.isend("late", dest=2, tag=6)
            return None
        first = yield from comm.recv(source=ANY_SOURCE, tag=ANY_TAG)
        second = yield from comm.recv(source=ANY_SOURCE, tag=ANY_TAG)
        return (first, second)

    results = run_program(program, 3)
    assert results[2] == ("early", "late")


def test_earliest_pending_recv_wins_on_send():
    """A send matches the earliest-posted pending receive whose pattern
    accepts it, across exact and wildcard channels."""

    def program(ctx):
        comm = ctx.comm
        if ctx.rank == 0:
            wild = yield from comm.irecv(source=ANY_SOURCE, tag=ANY_TAG)
            exact = yield from comm.irecv(source=1, tag=7)
            first = yield from comm.wait(wild)
            second = yield from comm.wait(exact)
            return (first, second)
        if ctx.rank == 1:
            yield from comm.isend("a", dest=0, tag=7)
            yield from comm.isend("b", dest=0, tag=7)
        return None

    results = run_program(program, 2)
    # The wildcard was posted first, so it claims the first message.
    assert results[0] == ("a", "b")
