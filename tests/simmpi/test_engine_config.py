"""EngineConfig: the one picklable object that fully describes a run."""

import pickle

import numpy as np
import pytest

from repro.simmpi import Engine, EngineConfig, TraceRecorder


def _ping_pong(ctx):
    if ctx.rank == 0:
        yield from ctx.comm.isend(b"x" * 64, dest=1, tag=3)
        reply = yield from ctx.comm.recv(source=1, tag=4)
        return reply
    payload = yield from ctx.comm.recv(source=0, tag=3)
    yield from ctx.comm.isend(payload, dest=0, tag=4)
    return payload


class TestConstruction:
    def test_defaults(self):
        cfg = EngineConfig()
        assert cfg.use_fast_collectives
        assert cfg.use_batched_p2p
        assert cfg.use_kernels
        assert cfg.pool_capacity == 512
        assert cfg.schedule_seed is None
        assert cfg.schedule_trace is None
        assert cfg.failure_ranks == frozenset()
        assert not cfg.track_recv_counts

    def test_equality_and_hash(self):
        assert EngineConfig() == EngineConfig()
        assert hash(EngineConfig()) == hash(EngineConfig())
        assert EngineConfig(use_kernels=False) != EngineConfig()

    def test_frozen(self):
        with pytest.raises(AttributeError):
            EngineConfig().pool_capacity = 7

    def test_failure_ranks_coerced_to_frozenset(self):
        cfg = EngineConfig(failure_ranks=[3, 1, 3])
        assert cfg.failure_ranks == frozenset({1, 3})
        assert isinstance(cfg.failure_ranks, frozenset)

    def test_validation(self):
        with pytest.raises(ValueError):
            EngineConfig(pool_capacity=0)
        with pytest.raises(ValueError):
            EngineConfig(schedule_seed="not-an-int")
        with pytest.raises(ValueError):
            EngineConfig(failure_ranks=[-1])


class TestPickling:
    @pytest.mark.parametrize(
        "cfg",
        [
            EngineConfig(),
            EngineConfig(use_batched_p2p=False, pool_capacity=16),
            EngineConfig(schedule_seed=42, failure_ranks=(2, 5)),
        ],
    )
    def test_round_trip(self, cfg):
        clone = pickle.loads(pickle.dumps(cfg))
        assert clone == cfg
        assert hash(clone) == hash(cfg)


class TestEngineIntegration:
    def test_config_is_primary_constructor(self):
        cfg = EngineConfig(use_batched_p2p=False, use_kernels=False)
        tracer_a = TraceRecorder(2)
        tracer_b = TraceRecorder(2)
        Engine(2, config=cfg, tracer=tracer_a).run([_ping_pong] * 2)
        Engine(
            2, use_batched_p2p=False, use_kernels=False, tracer=tracer_b
        ).run([_ping_pong] * 2)
        np.testing.assert_array_equal(
            tracer_a.bytes_matrix, tracer_b.bytes_matrix
        )

    def test_legacy_kwargs_build_the_same_config(self):
        engine = Engine(2, use_fast_collectives=False, pool_capacity=9)
        assert engine.config == EngineConfig(
            use_fast_collectives=False, pool_capacity=9
        )

    def test_config_and_legacy_kwargs_conflict(self):
        with pytest.raises(TypeError, match="legacy keyword"):
            Engine(2, config=EngineConfig(), pool_capacity=9)
