"""Communicator API tests: groups, split, rank translation, validation."""

import pytest

from repro.simmpi import CommunicatorError, run_program


class TestSplit:
    def test_split_by_parity(self):
        def program(ctx):
            comm = ctx.comm
            sub = yield from comm.split(color=ctx.rank % 2)
            return (sub.rank, sub.size, sub.group)

        results = run_program(program, 6)
        evens = tuple(r for r in range(6) if r % 2 == 0)
        odds = tuple(r for r in range(6) if r % 2 == 1)
        for rank, (sub_rank, sub_size, group) in enumerate(results):
            assert sub_size == 3
            assert group == (evens if rank % 2 == 0 else odds)
            assert group[sub_rank] == rank

    def test_split_key_reorders(self):
        def program(ctx):
            comm = ctx.comm
            # Reverse ordering within the new communicator.
            sub = yield from comm.split(color=0, key=-ctx.rank)
            return sub.group

        groups = run_program(program, 4)
        assert groups[0] == (3, 2, 1, 0)

    def test_split_none_color_returns_none(self):
        def program(ctx):
            comm = ctx.comm
            color = 0 if ctx.rank == 0 else None
            sub = yield from comm.split(color)
            return sub if sub is None else sub.size

        results = run_program(program, 3)
        assert results == [1, None, None]

    def test_communication_within_split(self):
        def program(ctx):
            comm = ctx.comm
            sub = yield from comm.split(color=ctx.rank // 2)
            total = yield from sub.allreduce(ctx.rank)
            return total

        # Pairs (0,1), (2,3): sums 1 and 5.
        assert run_program(program, 4) == [1, 1, 5, 5]

    def test_nested_split(self):
        def program(ctx):
            comm = ctx.comm
            half = yield from comm.split(color=ctx.rank // 4)
            quarter = yield from half.split(color=half.rank // 2)
            return (yield from quarter.allreduce(1))

        assert run_program(program, 8) == [2] * 8

    def test_sequential_splits_get_distinct_comm_ids(self):
        def program(ctx):
            comm = ctx.comm
            a = yield from comm.split(color=0)
            b = yield from comm.split(color=0)
            return (a.comm_id, b.comm_id)

        ids = run_program(program, 2)[0]
        assert ids[0] != ids[1]


class TestValidation:
    def test_send_to_invalid_rank(self):
        def program(ctx):
            with pytest.raises(CommunicatorError):
                yield from ctx.comm.send("x", dest=99)
            return None

        run_program(program, 2)

    def test_negative_send_tag_rejected(self):
        def program(ctx):
            with pytest.raises(CommunicatorError):
                yield from ctx.comm.send("x", dest=0, tag=-5)
            return None

        run_program(program, 1)

    def test_bad_root_rejected(self):
        def program(ctx):
            with pytest.raises(CommunicatorError):
                yield from ctx.comm.bcast("x", root=10)
            return None

        run_program(program, 2)

    def test_translate_rank(self):
        def program(ctx):
            comm = ctx.comm
            sub = yield from comm.split(color=0, key=-ctx.rank)
            return sub.translate_rank(0)

        # key reverses order: local 0 is world rank nranks-1.
        assert run_program(program, 3)[0] == 2


class TestSyntheticPayloads:
    def test_explicit_nbytes_with_none_payload(self):
        from repro.simmpi import Engine, TraceRecorder

        tracer = TraceRecorder(2)

        def program(ctx):
            comm = ctx.comm
            if ctx.rank == 0:
                yield from comm.send(None, dest=1, tag=0, nbytes=12345)
            else:
                yield from comm.recv(source=0, tag=0)
            return None

        Engine(2, tracer=tracer).run(program)
        assert tracer.bytes_matrix[1, 0] == 12345
