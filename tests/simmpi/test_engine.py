"""Engine-level tests: scheduling, matching, determinism, deadlock."""

import numpy as np
import pytest

from repro.simmpi import (
    ANY_SOURCE,
    ANY_TAG,
    DeadlockError,
    Engine,
    TraceRecorder,
    run_program,
)
from repro.simmpi.network import LinkParameters, NetworkModel


class TestBasicPingPong:
    def test_two_rank_send_recv(self):
        def program(ctx):
            comm = ctx.comm
            if ctx.rank == 0:
                yield from comm.send({"a": 7}, dest=1, tag=11)
                return "sent"
            data = yield from comm.recv(source=0, tag=11)
            return data

        results = run_program(program, 2)
        assert results == ["sent", {"a": 7}]

    def test_round_trip(self):
        def program(ctx):
            comm = ctx.comm
            if ctx.rank == 0:
                yield from comm.send(21, dest=1)
                doubled = yield from comm.recv(source=1)
                return doubled
            v = yield from comm.recv(source=0)
            yield from comm.send(v * 2, dest=0)
            return None

        assert run_program(program, 2)[0] == 42

    def test_numpy_payload_is_copied_at_send(self):
        def program(ctx):
            comm = ctx.comm
            if ctx.rank == 0:
                buf = np.arange(4)
                yield from comm.send(buf, dest=1, tag=0)
                buf[:] = -1  # mutate after send: receiver must not see it
                yield from comm.send(None, dest=1, tag=1)
                return None
            data = yield from comm.recv(source=0, tag=0)
            yield from comm.recv(source=0, tag=1)
            return data

        received = run_program(program, 2)[1]
        np.testing.assert_array_equal(received, np.arange(4))

    def test_self_send(self):
        def program(ctx):
            comm = ctx.comm
            yield from comm.isend("me", dest=0, tag=3)
            return (yield from comm.recv(source=0, tag=3))

        assert run_program(program, 1) == ["me"]


class TestMatchingSemantics:
    def test_tag_selectivity(self):
        def program(ctx):
            comm = ctx.comm
            if ctx.rank == 0:
                yield from comm.send("first", dest=1, tag=1)
                yield from comm.send("second", dest=1, tag=2)
                return None
            second = yield from comm.recv(source=0, tag=2)
            first = yield from comm.recv(source=0, tag=1)
            return (first, second)

        assert run_program(program, 2)[1] == ("first", "second")

    def test_non_overtaking_same_tag(self):
        def program(ctx):
            comm = ctx.comm
            if ctx.rank == 0:
                for i in range(5):
                    yield from comm.send(i, dest=1, tag=9)
                return None
            out = []
            for _ in range(5):
                out.append((yield from comm.recv(source=0, tag=9)))
            return out

        assert run_program(program, 2)[1] == [0, 1, 2, 3, 4]

    def test_any_source(self):
        def program(ctx):
            comm = ctx.comm
            if ctx.rank == 0:
                got = set()
                for _ in range(2):
                    payload, status = yield from comm.recv_status(
                        source=ANY_SOURCE, tag=5
                    )
                    got.add((status.source, payload))
                return got
            yield from comm.send(f"from{ctx.rank}", dest=0, tag=5)
            return None

        got = run_program(program, 3)[0]
        assert got == {(1, "from1"), (2, "from2")}

    def test_any_tag(self):
        def program(ctx):
            comm = ctx.comm
            if ctx.rank == 0:
                yield from comm.send("x", dest=1, tag=17)
                return None
            payload, status = yield from comm.recv_status(source=0, tag=ANY_TAG)
            return (payload, status.tag, status.nbytes)

        payload, tag, nbytes = run_program(program, 2)[1]
        assert payload == "x"
        assert tag == 17
        assert nbytes > 0

    def test_unexpected_message_queue(self):
        # Send completes before the receive is posted; message parks in the
        # unexpected queue and is matched later.
        def program(ctx):
            comm = ctx.comm
            if ctx.rank == 0:
                yield from comm.send("early", dest=1, tag=0)
                return None
            # Rank 1 does local work first (no yield), then receives.
            ctx.advance(1.0)
            return (yield from comm.recv(source=0, tag=0))

        assert run_program(program, 2)[1] == "early"

    def test_communicator_isolation(self):
        # Same (source, tag) on two communicators must not cross-match.
        def program(ctx):
            comm = ctx.comm
            sub = yield from comm.split(color=0)
            if ctx.rank == 0:
                yield from comm.send("world", dest=1, tag=4)
                yield from sub.send("sub", dest=1, tag=4)
                return None
            a = yield from sub.recv(source=0, tag=4)
            b = yield from comm.recv(source=0, tag=4)
            return (a, b)

        assert run_program(program, 2)[1] == ("sub", "world")


class TestNonblocking:
    def test_isend_irecv_waitall(self):
        def program(ctx):
            comm = ctx.comm
            right = (ctx.rank + 1) % ctx.nranks
            left = (ctx.rank - 1) % ctx.nranks
            sreq = yield from comm.isend(ctx.rank, dest=right, tag=0)
            rreq = yield from comm.irecv(source=left, tag=0)
            results = yield from comm.waitall([sreq, rreq])
            return results[1]

        results = run_program(program, 4)
        assert results == [3, 0, 1, 2]

    def test_sendrecv_shift_does_not_deadlock(self):
        def program(ctx):
            comm = ctx.comm
            right = (ctx.rank + 1) % ctx.nranks
            left = (ctx.rank - 1) % ctx.nranks
            return (
                yield from comm.sendrecv(
                    ctx.rank, dest=right, source=left, sendtag=2, recvtag=2
                )
            )

        assert run_program(program, 8) == [7, 0, 1, 2, 3, 4, 5, 6]


class TestDeadlockDetection:
    def test_recv_without_send_raises(self):
        def only_recv(ctx):
            if ctx.rank == 1:
                yield from ctx.comm.recv(source=0, tag=0)
            else:
                if False:
                    yield
            return None

        with pytest.raises(DeadlockError) as exc:
            run_program(only_recv, 2)
        assert 1 in exc.value.blocked
        assert "recv" in exc.value.blocked[1]

    def test_mismatched_tags_deadlock(self):
        def program(ctx):
            comm = ctx.comm
            if ctx.rank == 0:
                yield from comm.send("x", dest=1, tag=1)
                yield from comm.recv(source=1, tag=1)
            else:
                yield from comm.recv(source=0, tag=2)  # wrong tag
            return None

        with pytest.raises(DeadlockError):
            run_program(program, 2)


class TestDeterminism:
    def test_identical_runs_produce_identical_traces(self):
        def program(ctx):
            comm = ctx.comm
            data = np.full(8, ctx.rank, dtype=np.float64)
            total = yield from comm.allreduce(data)
            yield from comm.barrier()
            return float(total[0])

        def run_once():
            tracer = TraceRecorder(8)
            engine = Engine(8, tracer=tracer)
            results = engine.run(program)
            return results, tracer.bytes_matrix.copy()

        r1, m1 = run_once()
        r2, m2 = run_once()
        assert r1 == r2
        np.testing.assert_array_equal(m1, m2)

    def test_results_in_rank_order(self):
        def program(ctx):
            if False:
                yield
            return ctx.rank * 10

        assert run_program(program, 5) == [0, 10, 20, 30, 40]


class TestVirtualTime:
    def test_transfer_time_advances_receiver_clock(self):
        link = LinkParameters(latency_s=1.0, bandwidth_Bps=100.0)
        network = NetworkModel(intra_node=link, inter_node=link)

        def program(ctx):
            comm = ctx.comm
            if ctx.rank == 0:
                yield from comm.send(None, dest=1, tag=0, nbytes=200)
                return ctx.now
            yield from comm.recv(source=0, tag=0)
            return ctx.now

        engine = Engine(2, network=network)
        t_send, t_recv = engine.run(program)
        # arrival = 0 + 1.0 latency + 200/100 transfer = 3.0
        assert t_recv == pytest.approx(3.0)
        assert t_send == pytest.approx(0.0)  # buffered send costs nothing

    def test_compute_advance(self):
        def program(ctx):
            ctx.advance(2.5)
            if False:
                yield
            return ctx.now

        assert run_program(program, 1) == [2.5]

    def test_recv_does_not_go_back_in_time(self):
        link = LinkParameters(latency_s=0.0, bandwidth_Bps=float("inf"))
        network = NetworkModel(intra_node=link, inter_node=link)

        def program(ctx):
            comm = ctx.comm
            if ctx.rank == 0:
                yield from comm.send(None, dest=1, tag=0)
                return ctx.now
            ctx.advance(5.0)  # receiver is already past the arrival time
            yield from comm.recv(source=0, tag=0)
            return ctx.now

        engine = Engine(2, network=network)
        assert engine.run(program)[1] == pytest.approx(5.0)

    def test_negative_advance_rejected(self):
        def program(ctx):
            with pytest.raises(ValueError):
                ctx.advance(-1.0)
            if False:
                yield
            return None

        run_program(program, 1)


class TestEngineValidation:
    def test_zero_ranks_rejected(self):
        with pytest.raises(ValueError):
            Engine(0)

    def test_non_generator_program_rejected(self):
        def not_a_generator(ctx):
            return 42

        engine = Engine(1)
        with pytest.raises(TypeError, match="generator"):
            engine.run(not_a_generator)

    def test_program_list_length_must_match(self):
        def program(ctx):
            if False:
                yield
            return None

        engine = Engine(3)
        with pytest.raises(ValueError):
            engine.run([program, program])

    def test_max_time_property(self):
        def program(ctx):
            ctx.advance(float(ctx.rank))
            if False:
                yield
            return None

        engine = Engine(4)
        engine.run(program)
        assert engine.max_time == pytest.approx(3.0)
        assert engine.rank_times() == pytest.approx([0.0, 1.0, 2.0, 3.0])
