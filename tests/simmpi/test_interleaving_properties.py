"""Property suite for schedule-interleaving legality.

Every schedule the exploration mode can produce permutes only
causally-unordered ranks, so it must be MPI-legal: for arbitrary small
programs, a seeded interleaving either completes with exactly the same
message multiset as the canonical schedule — never breaking per-channel
non-overtaking — or deadlocks with a correct attribution that replays
exactly from its recorded :class:`~repro.simmpi.ScheduleTrace`. Programs
without wildcard receives must stay bit-identical to canonical under any
seed (schedule determinism); wildcard programs may legally re-arbitrate.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.simmpi import (
    ANY_SOURCE,
    ANY_TAG,
    DeadlockError,
    Engine,
    run_program,
)

NRANKS = 4

sends = st.lists(
    st.tuples(
        st.integers(0, NRANKS - 1),  # src
        st.integers(0, NRANKS - 1),  # dst
        st.integers(0, 2),  # tag
        st.integers(0, 1000),  # value
    ),
    min_size=1,
    max_size=24,
)
modes = st.lists(
    st.sampled_from(["exact", "any_source", "any_tag", "wildcard"]),
    min_size=NRANKS,
    max_size=NRANKS,
)
seeds = st.integers(0, 2**31 - 1)


def _recv_plan(inbox, mode):
    """Counting-satisfiable receive patterns for one rank's inbox: these
    plans complete under *every* legal schedule, so any deadlock would be
    an interleaving bug, not a program bug."""
    if mode == "exact":
        return [(src, tag) for src, tag, _ in inbox]
    if mode == "any_source":
        return [(ANY_SOURCE, tag) for _, tag, _ in inbox]
    if mode == "any_tag":
        return [(src, ANY_TAG) for src, _, _ in inbox]
    return [(ANY_SOURCE, ANY_TAG)] * len(inbox)


def _traffic(schedule):
    outgoing = {r: [] for r in range(NRANKS)}
    inbox = {r: [] for r in range(NRANKS)}
    for src, dst, tag, value in schedule:
        outgoing[src].append((dst, tag, value))
        inbox[dst].append((src, tag, value))
    return outgoing, inbox


def _make_program(outgoing, plans):
    def program(ctx):
        comm = ctx.comm
        for dst, tag, value in outgoing[ctx.rank]:
            yield from comm.isend((ctx.rank, tag, value), dest=dst, tag=tag)
        received = []
        for source, tag in plans[ctx.rank]:
            payload, status = yield from comm.recv_status(source=source, tag=tag)
            received.append((status.source, status.tag, payload))
        return received

    return program


def _assert_delivery(results, inbox, what):
    """Exactly-once delivery and per-(src, tag) non-overtaking."""
    for rank in range(NRANKS):
        got = sorted(
            (src, tag, payload[2]) for src, tag, payload in results[rank]
        )
        assert got == sorted(inbox[rank]), f"{what}: rank {rank} inbox"
        seen: dict[tuple[int, int], list[int]] = {}
        for src, tag, payload in results[rank]:
            assert payload[0] == src and payload[1] == tag, (
                f"{what}: metadata/payload provenance mismatch"
            )
            seen.setdefault((src, tag), []).append(payload[2])
        sent: dict[tuple[int, int], list[int]] = {}
        for src, tag, value in inbox[rank]:
            sent.setdefault((src, tag), []).append(value)
        for channel, values in seen.items():
            assert values == sent[channel], (
                f"{what}: channel {channel} overtaken at rank {rank}"
            )


@settings(deadline=None, max_examples=60)
@given(schedule=sends, mode_per_rank=modes, seed=seeds)
def test_seeded_interleavings_stay_legal(schedule, mode_per_rank, seed):
    """Counting-satisfiable programs complete under every explored
    schedule — no deadlock, no lost/duplicated message, no overtaking."""
    outgoing, inbox = _traffic(schedule)
    plans = {r: _recv_plan(inbox[r], mode_per_rank[r]) for r in range(NRANKS)}
    results = run_program(
        _make_program(outgoing, plans), NRANKS, schedule_seed=seed
    )
    _assert_delivery(results, inbox, f"seed {seed}")


@settings(deadline=None, max_examples=60)
@given(schedule=sends, seed=seeds)
def test_wildcard_free_programs_are_schedule_deterministic(schedule, seed):
    """Without wildcard receives the program is dataflow-deterministic:
    every legal interleaving returns bit-identical results."""
    outgoing, inbox = _traffic(schedule)
    plans = {r: _recv_plan(inbox[r], "exact") for r in range(NRANKS)}
    canonical = run_program(_make_program(outgoing, plans), NRANKS)
    explored = run_program(
        _make_program(outgoing, plans), NRANKS, schedule_seed=seed
    )
    assert explored == canonical


@settings(deadline=None, max_examples=60)
@given(schedule=sends, seed=seeds)
def test_starvable_plans_deadlock_cleanly_and_replay(schedule, seed):
    """Wildcard-then-exact receive plans can starve under a permuted
    posting order. That outcome must be *attributed* (a DeadlockError
    naming blocked receivers) — never a crash, never a matching
    violation — and must replay exactly from the recorded trace."""
    outgoing, inbox = _traffic(schedule)
    plans = {}
    for rank in range(NRANKS):
        box = inbox[rank]
        half = len(box) // 2
        plans[rank] = [(ANY_SOURCE, ANY_TAG)] * half + [
            (src, tag) for src, tag, _ in box[half:]
        ]
    program = _make_program(outgoing, plans)
    engine = Engine(NRANKS, schedule_seed=seed)
    try:
        results = engine.run(program)
    except DeadlockError as err:
        assert err.blocked, "deadlock with empty attribution"
        for rank, description in err.blocked.items():
            assert 0 <= rank < NRANKS
            assert "recv" in description, (
                f"blocked rank {rank} not blocked on a receive: {description}"
            )
        trace = engine.schedule_trace
        assert trace is not None
        replay = Engine(NRANKS, schedule_trace=trace)
        try:
            replay.run(program)
            raise AssertionError("trace replay did not reproduce the deadlock")
        except DeadlockError as replay_err:
            assert replay_err.blocked == err.blocked
    else:
        _assert_delivery(results, inbox, f"starvable seed {seed}")
