"""Network-model tests."""

import pytest

from repro.simmpi.network import LinkParameters, NetworkModel, zero_latency_network


class TestLinkParameters:
    def test_transfer_time(self):
        link = LinkParameters(latency_s=1e-6, bandwidth_Bps=1e9)
        assert link.transfer_time(0) == pytest.approx(1e-6)
        assert link.transfer_time(10**9) == pytest.approx(1.0 + 1e-6)

    def test_validation(self):
        with pytest.raises(ValueError):
            LinkParameters(latency_s=-1.0, bandwidth_Bps=1.0)
        with pytest.raises(ValueError):
            LinkParameters(latency_s=0.0, bandwidth_Bps=0.0)


class TestNetworkModel:
    def test_default_all_ranks_on_own_node(self):
        net = NetworkModel()
        assert not net.same_node(0, 1)
        assert net.node_of(5) == 5

    def test_locator_callable(self):
        net = NetworkModel(locator=lambda rank: rank // 4)
        assert net.same_node(0, 3)
        assert not net.same_node(3, 4)

    def test_locator_object(self):
        class Loc:
            def node_of_rank(self, rank):
                return rank // 2

        net = NetworkModel(locator=Loc())
        assert net.same_node(0, 1)
        assert not net.same_node(1, 2)

    def test_intra_vs_inter_selection(self):
        intra = LinkParameters(latency_s=0.0, bandwidth_Bps=100.0)
        inter = LinkParameters(latency_s=0.0, bandwidth_Bps=10.0)
        net = NetworkModel(intra_node=intra, inter_node=inter, locator=lambda r: r // 2)
        assert net.transfer_time(0, 1, 100) == pytest.approx(1.0)  # intra
        assert net.transfer_time(0, 2, 100) == pytest.approx(10.0)  # inter

    def test_self_transfer_is_free(self):
        net = NetworkModel()
        assert net.transfer_time(3, 3, 10**9) == 0.0

    def test_zero_latency_network(self):
        net = zero_latency_network()
        assert net.transfer_time(0, 1, 10**12) == 0.0
