"""Edge cases of the struct-of-arrays message pool and persistent waves.

The pool's contract: a slot is live from send post to receive consumption,
observers only ever see :class:`MessageView` snapshots, recycled slots can
never corrupt completed receives, capacity grows transparently, and the
whole store pickles (the campaign runner's process pool ships owning
objects between processes).
"""

import pickle

import numpy as np
import pytest

from repro.simmpi import (
    ANY_SOURCE,
    ANY_TAG,
    Engine,
    MessagePool,
    TraceRecorder,
)
from repro.simmpi.errors import MatchingError
from repro.simmpi.request import COMPLETED_SEND, UNPRICED

from test_fast_collectives import two_level_network  # same-directory module


class TestSlotLifecycle:
    def test_slot_reuse_after_wildcard_receive(self):
        """A wildcard-consumed slot is recycled for later traffic while the
        earlier receive's view stays intact."""
        engine = Engine(3, network=two_level_network(), pool_capacity=1)

        def program(ctx):
            if ctx.rank == 0:
                yield from ctx.comm.isend(b"first", dest=2, tag=5)
            elif ctx.rank == 1:
                yield from ctx.comm.isend(b"second", dest=2, tag=9)
            else:
                first, st1 = yield from ctx.comm.recv_status(
                    source=ANY_SOURCE, tag=ANY_TAG
                )
                second, st2 = yield from ctx.comm.recv_status(
                    source=ANY_SOURCE, tag=ANY_TAG
                )
                # Wildcards drain in posting order; the first view must
                # survive the slot being recycled for the second message.
                return (first, st1.source, st1.tag, second, st2.source, st2.tag)

        results = engine.run(program)
        assert results[2] == (b"first", 0, 5, b"second", 1, 9)
        # Every slot is back on the free list once the run drains.
        assert engine.pool.live_slots == 0

    def test_self_send_arrives_at_local_clock(self):
        """Self-sends cost no transfer time and flow through the pool."""
        engine = Engine(2, network=two_level_network())

        def program(ctx):
            yield from ctx.comm.isend(b"local", dest=ctx.rank, tag=1)
            ctx.advance(0.25)
            got = yield from ctx.comm.recv(source=ctx.rank, tag=1)
            return (got, ctx.now)

        assert engine.run(program) == [(b"local", 0.25)] * 2
        assert engine.pool.live_slots == 0

    def test_growth_past_initial_capacity(self):
        """Many in-flight messages double the pool transparently."""
        size = 8
        rounds = 6
        engine = Engine(size, network=two_level_network(), pool_capacity=2)

        def program(ctx):
            reqs = []
            for r in range(rounds):
                for dst in range(size):
                    yield from ctx.comm.isend(
                        (ctx.rank, r, dst), dest=dst, tag=r
                    )
            for r in range(rounds):
                for src in range(size):
                    reqs.append((yield from ctx.comm.irecv(source=src, tag=r)))
            payloads = yield from ctx.comm.waitall(reqs)
            return payloads

        results = engine.run(program)
        assert engine.pool.capacity >= size * size
        assert engine.pool.live_slots == 0
        for rank, payloads in enumerate(results):
            assert payloads == [
                (src, r, rank) for r in range(rounds) for src in range(size)
            ]

    def test_unconsumed_messages_recycle_on_next_run(self):
        """Fire-and-forget traffic releases its slots at the next run()."""
        engine = Engine(2, network=two_level_network(), pool_capacity=4)

        def fire_and_forget(ctx):
            yield from ctx.comm.isend(None, dest=1 - ctx.rank, tag=7, nbytes=32)
            return ctx.now

        engine.run(fire_and_forget)
        assert engine.pool.live_slots == 2  # parked unexpected, never consumed
        assert engine.run(fire_and_forget) == [0.0, 0.0]
        assert engine.pool.live_slots == 2  # this run's two, not four


class TestRecipeConsistency:
    def test_engine_inline_post_matches_pool_post(self):
        """The engine inlines MessagePool.post's column writes on its hot
        path; this pins the two copies of the recipe to each other. If a
        column is added to one, this test fails until both agree."""
        from repro.simmpi.request import UNPRICED

        reference = MessagePool(capacity=8)
        ref_slot = reference.post(
            1, 0, 7, 0, b"pinned", len(b"pinned"), 0.5, UNPRICED, 0, "halo"
        )

        engine = Engine(2, network=two_level_network(), pool_capacity=8)

        def program(ctx):
            if ctx.rank == 1:
                ctx.advance(0.5)
                yield from ctx.comm.isend(b"pinned", dest=0, tag=7, kind="halo")
            else:
                yield from ctx.comm.barrier()
            if ctx.rank == 1:
                yield from ctx.comm.barrier()

        engine.run(program)
        pool = engine.pool
        # The engine's message landed in some slot; find it via payload.
        slot = pool.payload.index(b"pinned")
        for column in ("src", "dst", "tag", "comm_id", "nbytes", "send_time"):
            assert getattr(pool, column)[slot] == getattr(reference, column)[ref_slot], column
        assert pool.kind[slot] == reference.kind[ref_slot]
        # Both recipes leave batched-path messages unpriced... except the
        # engine's wave flush already priced this one; the reference is
        # still the sentinel.
        assert reference.arrival[ref_slot] == UNPRICED
        assert pool.arrival[slot] >= 0.5

    def test_engine_inline_consume_matches_pool_consume(self):
        """Same contract for the consume recipe: view fields and slot
        cleanup must match MessagePool.consume exactly."""
        reference = MessagePool(capacity=8)
        ref_slot = reference.post(0, 1, 3, 0, b"x" * 9, 9, 0.0, 2.25, 5, "p2p")
        ref_view = reference.consume(ref_slot)

        engine = Engine(2, network=two_level_network(), pool_capacity=8)
        holder = {}

        def program(ctx):
            if ctx.rank == 0:
                yield from ctx.comm.isend(b"x" * 9, dest=1, tag=3)
            else:
                req = yield from ctx.comm.irecv(source=0, tag=3)
                yield from ctx.comm.wait(req)
                holder["view"] = req.view

        engine.run(program)
        view = holder["view"]
        assert (view.src, view.tag, view.nbytes, view.payload) == (
            ref_view.src,
            ref_view.tag,
            ref_view.nbytes,
            ref_view.payload,
        )
        # Consumed slots drop their payload/kind refs in both recipes.
        assert reference.payload[ref_slot] is None
        assert reference.kind[ref_slot] is None
        assert b"x" * 9 not in engine.pool.payload
        assert engine.pool.live_slots == 0


class TestFailureInjection:
    def test_requeued_traffic_to_failed_rank_does_not_leak_forward(self):
        """Messages addressed to a failed rank park in its mailbox for the
        rest of the run; the next run starts from a fully-free pool and a
        fresh matching state, so the stale traffic can never be matched."""
        engine = Engine(3, network=two_level_network(), pool_capacity=2)
        engine.failure_ranks.add(2)

        def program(ctx):
            yield from ctx.comm.isend(("to", 2, ctx.rank), dest=2, tag=3)
            return ctx.rank

        results = engine.run(program)
        assert results == [0, 1, None]
        assert engine.pool.live_slots == 2  # both undeliverable messages

        engine.failure_ranks.clear()

        def clean(ctx):
            got = yield from ctx.comm.sendrecv(
                ctx.rank, dest=(ctx.rank + 1) % 3, source=(ctx.rank - 1) % 3,
                sendtag=3,
            )
            return got

        # Same tag as the stale traffic: a leak would mis-deliver ("to", 2, …).
        assert engine.run(clean) == [2, 0, 1]

    def test_failed_sender_vs_cascade_reference(self):
        """Failure injection sees identical message flow on the pool engine
        whether or not batched pricing is active."""
        outcomes = []
        for batched in (False, True):
            engine = Engine(
                4, network=two_level_network(), use_batched_p2p=batched
            )
            engine.failure_ranks.add(1)

            def program(ctx):
                yield from ctx.comm.isend(ctx.rank * 10, dest=(ctx.rank + 1) % 4)
                if ctx.rank == 2:
                    got = yield from ctx.comm.recv(source=1)
                    return got
                return ctx.rank

            with pytest.raises(Exception) as excinfo:
                engine.run(program)
            outcomes.append(type(excinfo.value).__name__)
        # Rank 1 dies before sending, so rank 2 deadlocks — identically.
        assert outcomes == ["DeadlockError", "DeadlockError"]


class TestPickleSafety:
    def test_pool_roundtrips_with_live_messages(self):
        pool = MessagePool(capacity=4)
        slot = pool.post(0, 1, 7, 0, b"payload", 64, 1.5, UNPRICED, 3, "p2p")
        clone = pickle.loads(pickle.dumps(pool))
        assert clone.capacity == pool.capacity
        assert clone.free == pool.free
        for column in ("src", "dst", "tag", "comm_id", "nbytes", "send_time",
                       "arrival", "seq"):
            np.testing.assert_array_equal(
                getattr(clone, column), getattr(pool, column)
            )
        assert clone.payload[slot] == b"payload"
        view = clone.consume(slot)
        assert (view.src, view.tag, view.nbytes) == (0, 7, 64)

    def test_engine_roundtrips_before_run(self):
        """A configured engine ships to worker processes and runs there.

        (Engines that have already executed hold exhausted rank generators
        and do not pickle — the campaign runner builds engines inside the
        workers, which is the shape this test pins.)
        """
        from repro.simmpi import zero_latency_network

        engine = Engine(4, network=zero_latency_network(), pool_capacity=8)
        clone = pickle.loads(pickle.dumps(engine))

        def program(ctx):
            got = yield from ctx.comm.sendrecv(
                ctx.rank, dest=(ctx.rank + 1) % 4, source=(ctx.rank - 1) % 4
            )
            return got

        assert clone.run(program) == [3, 0, 1, 2]
        assert clone.pool.live_slots == 0


class TestPersistentWaves:
    def test_restart_while_in_flight_raises(self):
        engine = Engine(2, network=two_level_network())

        def program(ctx):
            comm = ctx.comm
            if ctx.rank == 0:
                recv = comm.recv_init(source=1, tag=4)
                yield from comm.start_all([recv])
                # Restarting before the (never-sent) message arrives:
                yield from comm.start_all([recv])
            else:
                yield from comm.barrier()

        with pytest.raises(MatchingError, match="still in flight"):
            engine.run(program)

    def test_restart_of_unwaited_completion_raises(self):
        """Restarting after the message matched but before the wait would
        silently drop the delivered message and leak its slot — refuse."""
        engine = Engine(2, network=two_level_network())

        def program(ctx):
            comm = ctx.comm
            if ctx.rank == 0:
                yield from ctx.comm.send(b"m1", dest=1, tag=4)
                yield from ctx.comm.send(b"m2", dest=1, tag=4)
            else:
                recv = comm.recv_init(source=0, tag=4)
                yield from comm.start_all([recv])
                yield from comm.barrier()  # m1 has matched recv by now
                yield from comm.start_all([recv])
            if ctx.rank == 0:
                yield from ctx.comm.barrier()

        with pytest.raises(MatchingError, match="never waited on"):
            engine.run(program)

    def test_wait_on_inactive_persistent_recv_is_noop(self):
        """MPI semantics: waiting on a never-started persistent request
        completes immediately with an empty result — through waitall,
        single wait, and wait_status alike."""
        engine = Engine(2, network=two_level_network())

        def program(ctx):
            recv = ctx.comm.recv_init(source=1 - ctx.rank, tag=9)
            (payload,) = yield from ctx.comm.waitall([recv])
            single = yield from ctx.comm.wait(recv)
            empty, status = yield from ctx.comm.wait_status(recv)
            ctx.advance(0.125)
            return (
                payload,
                single,
                empty,
                (status.source, status.tag, status.nbytes),
                ctx.now,
            )

        expected = (None, None, None, (ANY_SOURCE, ANY_TAG, 0), 0.125)
        assert engine.run(program) == [expected] * 2

    def test_start_all_rejects_plain_requests(self):
        engine = Engine(2, network=two_level_network())

        def program(ctx):
            req = yield from ctx.comm.irecv(source=1 - ctx.rank)
            yield from ctx.comm.start_all([req])

        with pytest.raises(MatchingError, match="non-persistent"):
            engine.run(program)

    def test_send_handles_are_shared_and_complete(self):
        engine = Engine(2, network=two_level_network())

        def program(ctx):
            req = yield from ctx.comm.isend(None, dest=1 - ctx.rank, nbytes=8)
            assert req is COMPLETED_SEND and req.done
            got = yield from ctx.comm.recv(source=1 - ctx.rank)
            return got

        assert engine.run(program) == [None, None]

    def test_wave_matches_per_message_program(self):
        """Persistent waves and isend/irecv/wait sequences are one
        workload: identical results, clocks and traces."""
        size = 6
        records = []
        for flavor in ("permsg", "wave"):
            tracer = TraceRecorder(size, by_kind=True)
            engine = Engine(size, network=two_level_network(), tracer=tracer)

            def permsg(ctx):
                right = (ctx.rank + 1) % size
                left = (ctx.rank - 1) % size
                total = 0.0
                for _ in range(4):
                    yield from ctx.comm.isend(
                        None, dest=right, tag=2, nbytes=128, kind="ring"
                    )
                    req = yield from ctx.comm.irecv(source=left, tag=2)
                    got = yield from ctx.comm.waitall([req])
                    ctx.advance(1e-6)
                    total += ctx.now
                return total

            def wave(ctx):
                comm = ctx.comm
                right = (ctx.rank + 1) % size
                left = (ctx.rank - 1) % size
                send = comm.send_init(None, dest=right, tag=2, nbytes=128, kind="ring")
                recv = comm.recv_init(source=left, tag=2)
                start = comm.start_all_op((send, recv))
                drain = comm.waitall_op((recv,))
                total = 0.0
                for _ in range(4):
                    yield start
                    yield drain
                    ctx.advance(1e-6)
                    total += ctx.now
                return total

            program = permsg if flavor == "permsg" else wave
            results = engine.run(program)
            records.append(
                {"results": results, "clocks": engine.rank_times(), "tracer": tracer}
            )
        ref, waved = records
        assert ref["results"] == waved["results"]
        assert ref["clocks"] == waved["clocks"]
        np.testing.assert_array_equal(
            ref["tracer"].bytes_matrix, waved["tracer"].bytes_matrix
        )
        np.testing.assert_array_equal(
            ref["tracer"].count_matrix, waved["tracer"].count_matrix
        )

    def test_wildcard_persistent_recv(self):
        """Persistent receives accept wildcard patterns and re-arm."""
        engine = Engine(3, network=two_level_network())

        def program(ctx):
            comm = ctx.comm
            if ctx.rank == 2:
                recv = comm.recv_init(source=ANY_SOURCE, tag=ANY_TAG)
                drain = comm.waitall_op((recv,))
                got = []
                for _ in range(4):
                    yield comm.start_all_op((recv,))
                    (payload,) = yield drain
                    got.append(payload)
                    st = recv.status()
                    got.append((st.source, st.tag))
                return got
            for i in range(2):
                yield from ctx.comm.send(
                    (ctx.rank, i), dest=2, tag=10 * ctx.rank + i
                )
            return None

        results = engine.run(program)
        payloads = results[2][0::2]
        sources = [s for s, _ in results[2][1::2]]
        assert sorted(payloads) == [(0, 0), (0, 1), (1, 0), (1, 1)]
        assert sorted(sources) == [0, 0, 1, 1]

    def test_waitall_with_duplicate_request(self):
        """Listing the same request twice must behave like the old
        sequential waits: one completion satisfies both occurrences."""
        engine = Engine(2, network=two_level_network())

        def program(ctx):
            if ctx.rank == 0:
                yield from ctx.comm.isend(b"once", dest=1, tag=2)
                return None
            req = yield from ctx.comm.irecv(source=0, tag=2)
            first, second = yield from ctx.comm.waitall([req, req])
            return (first, second)

        assert engine.run(program)[1] == (b"once", b"once")

    def test_preposted_recv_does_not_double_wake_waitall(self):
        """A receive pre-posted for a *later* message must not re-wake a
        rank whose waitall already completed: the spurious second schedule
        used to resume the exhausted generator and clobber its result.

        Timeline: rank 2 pre-posts a receive for rank 0's message, then
        blocks on a waitall satisfied by rank 3 (which steps after rank 2
        in the same batch). Rank 0, woken into the next batch by rank 1,
        steps *before* rank 2's legitimate resume and completes the
        pre-posted receive while rank 2 still shows a done-but-unconsumed
        waitall as blocked_on.
        """
        engine = Engine(4, network=two_level_network())

        def program(ctx):
            comm = ctx.comm
            if ctx.rank == 0:
                yield from comm.recv(source=1, tag=5)
                yield from comm.isend(b"late", dest=2, tag=99)
                return "r0"
            if ctx.rank == 1:
                yield from comm.isend(None, dest=0, tag=5, nbytes=8)
                return "r1"
            if ctx.rank == 2:
                early = yield from comm.irecv(source=0, tag=99)
                ring = yield from comm.irecv(source=3, tag=1)
                (first,) = yield from comm.waitall([ring])
                late = yield from comm.wait(early)
                return ("ok", first, late)
            yield from comm.isend(b"ring", dest=2, tag=1)
            return "r3"

        assert engine.run(program) == [
            "r0",
            "r1",
            ("ok", b"ring", b"late"),
            "r3",
        ]

    def test_wave_failure_injection_matches_per_message(self):
        """A rank killed mid-wave must leave the run in exactly the state
        the per-message path leaves it in: same deadlock (or completion),
        same blocked ranks, same number of stranded pool slots.

        ``kill_at=0`` kills the rank at its very first wave start (nothing
        posted); ``kill_at=2`` kills it between steady-state iterations —
        its in-flight wave has been drained, its next start is dropped,
        and neighbors strand exactly like they do on isend/irecv/wait.
        """
        from repro.simmpi.errors import DeadlockError

        def wave_program(kill_at):
            def program(ctx):
                comm = ctx.comm
                size = ctx.nranks
                right, left = (ctx.rank + 1) % size, (ctx.rank - 1) % size
                send = comm.send_init(None, dest=right, tag=2, nbytes=64)
                recv = comm.recv_init(source=left, tag=2)
                start = comm.start_all_op((send, recv))
                drain = comm.waitall_op((recv,))
                for i in range(4):
                    if ctx.rank == 1 and i == kill_at:
                        ctx.engine.failure_ranks.add(ctx.rank)
                    yield start
                    yield drain
                return ctx.now

            return program

        def permsg_program(kill_at):
            def program(ctx):
                comm = ctx.comm
                size = ctx.nranks
                right, left = (ctx.rank + 1) % size, (ctx.rank - 1) % size
                for i in range(4):
                    if ctx.rank == 1 and i == kill_at:
                        ctx.engine.failure_ranks.add(ctx.rank)
                    yield from comm.isend(None, dest=right, tag=2, nbytes=64)
                    req = yield from comm.irecv(source=left, tag=2)
                    yield from comm.waitall([req])
                return ctx.now

            return program

        for kill_at in (0, 2):
            outcomes = []
            for make in (permsg_program, wave_program):
                engine = Engine(4, network=two_level_network())
                try:
                    engine.run(make(kill_at))
                    outcomes.append(("completed", None, engine.pool.live_slots))
                except DeadlockError as exc:
                    outcomes.append(
                        ("deadlock", sorted(exc.blocked), engine.pool.live_slots)
                    )
            assert outcomes[0] == outcomes[1], f"kill_at={kill_at}"
            # Rank 1's death must strand someone — the scenario is live.
            assert outcomes[0][0] == "deadlock"

    def test_wave_traffic_to_failed_rank_requeues_like_per_message(self):
        """Wave sends parked in a failed rank's mailbox stay stranded for
        the run and are dropped by the next run's reset — exactly the
        per-message requeue/drop contract pinned in TestFailureInjection."""
        engine = Engine(3, network=two_level_network(), pool_capacity=2)
        engine.failure_ranks.add(2)

        def fire_wave(ctx):
            send = ctx.comm.send_init(("to", 2, ctx.rank), dest=2, tag=3)
            yield ctx.comm.start_all_op((send,))
            return ctx.rank

        results = engine.run(fire_wave)
        assert results == [0, 1, None]
        assert engine.pool.live_slots == 2  # both undeliverable messages

        engine.failure_ranks.clear()

        def clean(ctx):
            got = yield from ctx.comm.sendrecv(
                ctx.rank, dest=(ctx.rank + 1) % 3, source=(ctx.rank - 1) % 3,
                sendtag=3,
            )
            return got

        # Same tag as the stale wave traffic: a leak would mis-deliver.
        assert engine.run(clean) == [2, 0, 1]
        assert engine.pool.live_slots == 0  # stale slots were reclaimed

    def test_status_before_wait_raises(self):
        engine = Engine(2, network=two_level_network())

        def program(ctx):
            if ctx.rank == 0:
                yield from ctx.comm.isend(b"x", dest=1, tag=1)
                return None
            req = yield from ctx.comm.irecv(source=0, tag=1)
            with pytest.raises(RuntimeError, match="before"):
                req.status()
            payload, status = yield from ctx.comm.wait_status(req)
            return (payload, status.source, status.nbytes)

        assert engine.run(program)[1] == (b"x", 0, 1)
