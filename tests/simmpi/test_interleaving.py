"""Seeded schedule-interleaving exploration: legality, replay, equivalence.

``Engine(schedule_seed=...)`` permutes each scheduler batch among its
causally-unordered ranks; ``Engine(schedule_trace=...)`` replays a
recorded permutation stream exactly. This suite pins the contract from
every side: the default path is byte-for-byte the canonical drain, every
explored schedule is MPI-legal (wildcard-free programs stay bit-identical
to canonical; wildcard programs may legally re-arbitrate or deadlock),
replay from seed or trace reproduces the exact schedule, kernels deopt
with ``non-canonical-schedule``, and the wildcard arbitration that
interleaving perturbs keeps matching by posting-sequence stamp.
"""

import numpy as np
import pytest

from repro.simmpi import (
    ANY_SOURCE,
    DeadlockError,
    Engine,
    ScheduleTrace,
)

from test_kernel_loops import (  # same-directory module
    assert_records_equal,
    interpreted_ring_program,
    kernel_ring_program,
    run_engine,
    two_level_network,
)


def order_probe(order):
    """Program whose observable is the drain order itself: each rank logs
    its position before and after a barrier, so the log is a transcript of
    which rank ran when in each batch."""

    def program(ctx):
        order.append(("pre", ctx.rank))
        yield from ctx.comm.barrier()
        order.append(("mid", ctx.rank))
        yield from ctx.comm.barrier()
        order.append(("post", ctx.rank))
        return ctx.rank

    return program


def run_probe(size, **engine_kwargs):
    order = []
    engine = Engine(size, network=two_level_network(), **engine_kwargs)
    results = engine.run(order_probe(order))
    return order, results, engine


# A trace that reverses every batch it can: entries for many ordinals, all
# full reversals of ``size`` ranks; batches of any other size drain
# canonically (length-mismatch entries are skipped by contract).
def full_reversal_trace(size, n_batches=64):
    perm = tuple(range(size - 1, -1, -1))
    return ScheduleTrace(tuple((o, perm) for o in range(n_batches)))


class TestScheduleTrace:
    def test_validates_permutations(self):
        with pytest.raises(ValueError, match="not a permutation"):
            ScheduleTrace(((0, (0, 0, 1)),))

    def test_validates_ordinal_order(self):
        with pytest.raises(ValueError, match="strictly increase"):
            ScheduleTrace(((2, (1, 0)), (1, (1, 0))))

    def test_json_round_trip(self):
        trace = ScheduleTrace(((0, (2, 0, 1)), (3, (1, 0))))
        assert ScheduleTrace.from_jsonable(trace.to_jsonable()) == trace
        assert trace.to_jsonable() == [[0, [2, 0, 1]], [3, [1, 0]]]

    def test_without_ordinal(self):
        trace = ScheduleTrace(((0, (2, 0, 1)), (3, (1, 0))))
        shrunk = trace.without_ordinal(0)
        assert shrunk.entries == ((3, (1, 0)),)
        assert shrunk.permutation_for(0) is None
        assert shrunk.permutation_for(3) == (1, 0)
        assert trace.n_permuted == 2 and shrunk.n_permuted == 1


class TestCanonicalPathPinned:
    def test_default_drain_is_ascending(self):
        """The canonical schedule: every batch drains in rank order."""
        order, results, engine = run_probe(4)
        assert results == [0, 1, 2, 3]
        # Pinned literal transcript: batches drain ascending; the rank
        # that completes a barrier keeps running in its own step (so it
        # leads the next phase), and the released ranks follow in order.
        assert order == [
            ("pre", 0), ("pre", 1), ("pre", 2), ("pre", 3),
            ("mid", 3), ("mid", 0), ("mid", 1), ("mid", 2),
            ("post", 2), ("post", 0), ("post", 1), ("post", 3),
        ]
        assert engine.schedule_trace is None

    def test_schedule_seed_none_is_byte_identical(self):
        """``schedule_seed=None`` IS the canonical engine — same drain
        transcript, results, clocks and traces as an engine that never
        heard of scheduling seeds."""
        ref = run_engine(interpreted_ring_program(5), 6)
        explicit = run_engine(
            interpreted_ring_program(5), 6, schedule_seed=None
        )
        assert_records_equal(ref, explicit, "schedule_seed=None")
        order_ref, _, _ = run_probe(5)
        order_none, _, engine = run_probe(5, schedule_seed=None)
        assert order_none == order_ref
        assert engine.schedule_trace is None


class TestSeededExploration:
    def test_seed_permutes_and_records(self):
        order_ref, _, _ = run_probe(6)
        order, results, engine = run_probe(6, schedule_seed=1)
        assert results == list(range(6))  # same results, different route
        assert engine.schedule_trace is not None
        assert engine.schedule_trace.n_permuted > 0
        assert order != order_ref

    def test_same_seed_same_schedule(self):
        order_a, _, engine_a = run_probe(6, schedule_seed=7)
        order_b, _, engine_b = run_probe(6, schedule_seed=7)
        assert order_a == order_b
        assert engine_a.schedule_trace == engine_b.schedule_trace

    def test_different_seeds_differ(self):
        traces = {
            run_probe(6, schedule_seed=seed)[2].schedule_trace
            for seed in range(8)
        }
        assert len(traces) > 1

    def test_replay_from_trace_is_exact(self):
        """A recorded trace replays the identical schedule with no RNG:
        same drain transcript, and the replay re-records the same trace."""
        order_seeded, _, engine = run_probe(6, schedule_seed=3)
        trace = engine.schedule_trace
        assert trace.n_permuted > 0
        order_replay, results, replay_engine = run_probe(
            6, schedule_trace=trace
        )
        assert order_replay == order_seeded
        assert results == list(range(6))
        assert replay_engine.schedule_trace == trace

    def test_dropped_trace_entry_is_still_legal(self):
        """The shrinker's move — reverting one batch to canonical order —
        must always yield a runnable, legal schedule."""
        _, _, engine = run_probe(6, schedule_seed=3)
        trace = engine.schedule_trace
        first_ordinal = trace.entries[0][0]
        shrunk = trace.without_ordinal(first_ordinal)
        _, results, replay_engine = run_probe(6, schedule_trace=shrunk)
        assert results == list(range(6))
        # Only the surviving entries are applied (and some may now be
        # skipped by length mismatch); whatever applied is a subset.
        applied = set(replay_engine.schedule_trace.entries)
        assert applied <= set(shrunk.entries)

    def test_forced_full_reversal_runs(self):
        """A hand-written adversarial trace — every batch reversed — is a
        legal schedule for a wildcard-free program: identical results."""
        ref = run_engine(interpreted_ring_program(5), 6)
        rev = run_engine(
            interpreted_ring_program(5),
            6,
            schedule_trace=full_reversal_trace(6),
        )
        assert_records_equal(ref, rev, "full reversal")
        assert rev["engine"].schedule_trace.n_permuted > 0


class TestDeterministicProgramEquivalence:
    """Programs with no wildcard receives are schedule-deterministic:
    every legal interleaving produces bit-identical results, clocks and
    traces. Exercised for the two schedule-sensitive subsystems the issue
    names: split-communicator collectives and persistent waves."""

    @pytest.mark.parametrize("seed", [1, 2, 9])
    def test_split_collectives_equivalent(self, seed):
        def program(ctx):
            row = yield from ctx.comm.split(color=ctx.rank // 3)
            total = 0.0
            for _ in range(3):
                total = yield from row.allreduce(float(ctx.rank) + total)
            yield from ctx.comm.barrier()
            col = yield from ctx.comm.split(color=ctx.rank % 3)
            peak = yield from col.allreduce(total)
            return (total, peak)

        ref = run_engine(program, 9)
        got = run_engine(program, 9, schedule_seed=seed)
        assert_records_equal(ref, got, f"split collectives seed {seed}")
        assert got["engine"].schedule_trace.n_permuted > 0

    @pytest.mark.parametrize("seed", [1, 4, 11])
    def test_persistent_waves_equivalent(self, seed):
        ref = run_engine(interpreted_ring_program(6), 6)
        got = run_engine(
            interpreted_ring_program(6), 6, schedule_seed=seed
        )
        assert_records_equal(ref, got, f"wave seed {seed}")

    def test_wave_rearm_pool_state_matches_canonical(self):
        """Permuted drains hand out pool slots in a different order, but
        wave re-arm must converge to the canonical pool state: identical
        capacity (no spurious growth), zero live slots, and the full slot
        range back on the free list — slot for slot."""
        ref = run_engine(interpreted_ring_program(6), 6)
        ref_pool = ref["engine"].pool
        for trace_or_seed in (
            {"schedule_seed": 5},
            {"schedule_trace": full_reversal_trace(6)},
        ):
            got = run_engine(interpreted_ring_program(6), 6, **trace_or_seed)
            pool = got["engine"].pool
            assert pool.capacity == ref_pool.capacity
            assert pool.live_slots == 0 == ref_pool.live_slots
            assert sorted(pool.free) == sorted(ref_pool.free)
            assert sorted(pool.free) == list(range(pool.capacity))


class TestKernelGating:
    def test_kernel_deopts_under_exploration(self):
        """Kernelization assumes the canonical schedule; an exploring
        engine must run the interpreted expansion and say why."""
        ref = run_engine(interpreted_ring_program(5), 4)
        kern = run_engine(kernel_ring_program(5), 4, schedule_seed=2)
        assert kern["engine"].kernel_runs == 0
        assert kern["engine"].kernel_deopts.get("non-canonical-schedule") == 4
        # Deopted-but-permuted still matches canonical bit for bit
        # (the ring wave has no wildcards).
        assert_records_equal(ref, kern, "kernel deopt under exploration")

    def test_kernel_fast_path_restored_without_seed(self):
        kern = run_engine(kernel_ring_program(5), 4)
        assert kern["engine"].kernel_runs == 1
        assert kern["engine"].kernel_deopts == {}


def race_program(ctx):
    """The canonical wildcard race: rank 0 takes ANY_SOURCE then
    specifically rank 2. Canonically rank 1 posts first and the wildcard
    takes it; a schedule where rank 2 posts first starves the second
    receive — a legal deadlock, the kind exploration exists to find."""
    comm = ctx.comm
    if ctx.rank == 0:
        first, status = yield from comm.recv_status(source=ANY_SOURCE, tag=0)
        second = yield from comm.recv(source=2, tag=0)
        return (status.source, first, second)
    yield from comm.send(f"from{ctx.rank}", dest=0, tag=0)
    return ctx.rank


def find_deadlock_seed(limit=64):
    for seed in range(limit):
        engine = Engine(
            3, network=two_level_network(), schedule_seed=seed
        )
        try:
            engine.run(race_program)
        except DeadlockError as err:
            return seed, engine.schedule_trace, err
    raise AssertionError(f"no deadlocking schedule in seeds 0..{limit - 1}")


class TestWildcardRace:
    def test_canonical_run_completes(self):
        engine = Engine(3, network=two_level_network())
        results = engine.run(race_program)
        assert results[0] == (1, "from1", "from2")

    def test_exploration_finds_the_deadlock(self):
        seed, trace, err = find_deadlock_seed()
        assert set(err.blocked) == {0}
        assert "recv" in err.blocked[0]
        assert trace is not None and trace.n_permuted > 0

    def test_deadlock_replays_from_seed_and_trace(self):
        seed, trace, err = find_deadlock_seed()
        # Replay from the seed alone.
        engine = Engine(3, network=two_level_network(), schedule_seed=seed)
        with pytest.raises(DeadlockError) as seed_err:
            engine.run(race_program)
        assert seed_err.value.blocked == err.blocked
        assert engine.schedule_trace == trace
        # Replay from the recorded trace alone (what repro files carry).
        replay = Engine(3, network=two_level_network(), schedule_trace=trace)
        with pytest.raises(DeadlockError) as trace_err:
            replay.run(race_program)
        assert trace_err.value.blocked == err.blocked
        assert replay.schedule_trace == trace


class TestWildcardStampArbitration:
    """Satellite regression: under a permuted posting order the wildcard
    receive must still match by posting-sequence stamp — whoever's send
    actually posted first — never by drain position or sender rank."""

    @staticmethod
    def _stamp_program(ctx):
        comm = ctx.comm
        if ctx.rank == 0:
            gate = yield from comm.recv(source=3, tag=1)
            payload, status = yield from comm.recv_status(
                source=ANY_SOURCE, tag=0
            )
            # Drain the loser too so no schedule deadlocks.
            other = yield from comm.recv(source=ANY_SOURCE, tag=0)
            return (gate, status.source, payload, other)
        if ctx.rank == 3:
            yield from comm.send("gate", dest=0, tag=1)
        else:
            yield from comm.send(f"from{ctx.rank}", dest=0, tag=0)
        return ctx.rank

    def test_canonical_order_picks_rank1(self):
        engine = Engine(4, network=two_level_network())
        results = engine.run(self._stamp_program)
        assert results[0] == ("gate", 1, "from1", "from2")

    def test_reversed_posting_order_picks_rank2_by_stamp(self):
        """Reversing the first batch makes rank 2's message the earliest
        stamp in the unexpected pool; the wildcard must take it even
        though rank 1 is the lower-numbered sender channel."""
        trace = ScheduleTrace(((0, (3, 2, 1, 0)),))
        engine = Engine(4, network=two_level_network(), schedule_trace=trace)
        results = engine.run(self._stamp_program)
        assert results[0] == ("gate", 2, "from2", "from1")
        assert engine.schedule_trace.entries == trace.entries
