"""Property-based engine tests: random communication schedules.

Hypothesis generates arbitrary send schedules; the engine must deliver
every message exactly once, to the right receiver, in per-channel order,
with conserved byte counts — regardless of schedule shape.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.simmpi import Engine, TraceRecorder, run_program


# A schedule is a list of (src, dst, value) sends among 4 ranks.
schedules = st.lists(
    st.tuples(st.integers(0, 3), st.integers(0, 3), st.integers(0, 1000)),
    min_size=0,
    max_size=30,
)


@settings(deadline=None, max_examples=60)
@given(schedule=schedules)
def test_every_message_delivered_exactly_once_in_order(schedule):
    """Receivers see exactly the per-channel sequences that were sent."""
    nranks = 4
    outgoing = {r: [] for r in range(nranks)}
    expected = {}  # (src, dst) -> [values in send order]
    incoming_count = {r: 0 for r in range(nranks)}
    for src, dst, value in schedule:
        outgoing[src].append((dst, value))
        expected.setdefault((src, dst), []).append(value)
        incoming_count[dst] += 1

    def program(ctx):
        comm = ctx.comm
        rank = ctx.rank
        for dst, value in outgoing[rank]:
            yield from comm.isend((rank, value), dest=dst, tag=5)
        received = []
        for _ in range(incoming_count[rank]):
            payload, status = yield from comm.recv_status(tag=5)
            received.append((status.source, payload[1]))
        return received

    results = run_program(program, nranks)
    for dst in range(nranks):
        by_channel = {}
        for src, value in results[dst]:
            by_channel.setdefault((src, dst), []).append(value)
        for channel, values in by_channel.items():
            assert values == expected[channel], f"channel {channel} reordered"
    # Nothing left over: every expected channel fully drained.
    total_received = sum(len(r) for r in results)
    assert total_received == len(schedule)


@settings(deadline=None, max_examples=40)
@given(schedule=schedules)
def test_trace_conserves_bytes(schedule):
    """The tracer's totals equal the schedule's totals exactly."""
    nranks = 4
    outgoing = {r: [] for r in range(nranks)}
    incoming_count = {r: 0 for r in range(nranks)}
    total_bytes = 0
    for src, dst, value in schedule:
        size = value + 1
        outgoing[src].append((dst, size))
        incoming_count[dst] += 1
        total_bytes += size

    def program(ctx):
        comm = ctx.comm
        for dst, size in outgoing[ctx.rank]:
            yield from comm.isend(None, dest=dst, tag=0, nbytes=size)
        for _ in range(incoming_count[ctx.rank]):
            yield from comm.recv(tag=0)
        return None

    tracer = TraceRecorder(nranks)
    Engine(nranks, tracer=tracer).run(program)
    assert tracer.total_messages == len(schedule)
    assert tracer.total_bytes == total_bytes


@settings(deadline=None, max_examples=25)
@given(
    values=st.lists(
        st.integers(-(2**31), 2**31), min_size=1, max_size=8
    )
)
def test_allreduce_sum_matches_python_sum(values):
    """Collective results equal the plain-Python reduction of the inputs."""
    nranks = len(values)

    def program(ctx):
        return (yield from ctx.comm.allreduce(values[ctx.rank]))

    results = run_program(program, nranks)
    assert results == [sum(values)] * nranks


@settings(deadline=None, max_examples=25)
@given(
    st.integers(2, 9),
    st.integers(0, 2**32 - 1),
)
def test_random_splits_partition_the_world(size, seed):
    """comm.split with arbitrary colors yields consistent, disjoint groups."""
    rng = np.random.default_rng(seed)
    colors = rng.integers(0, 3, size=size).tolist()

    def program(ctx):
        sub = yield from ctx.comm.split(color=colors[ctx.rank])
        total = yield from sub.allreduce(1)
        return (sub.group, total)

    results = run_program(program, size)
    for rank, (group, total) in enumerate(results):
        same_color = tuple(r for r in range(size) if colors[r] == colors[rank])
        assert group == same_color
        assert total == len(same_color)
