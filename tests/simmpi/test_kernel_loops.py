"""Equivalence and deopt suite for kernelized steady-state loops.

A rank program can hand the engine its whole steady loop as one
:class:`~repro.simmpi.KernelLoop` op. When every unfinished rank does so
with the same iteration count and purely static wave traffic, the engine
compiles the world's iteration into a closed-form kernel (no posting, no
generator wakeups); otherwise it deopts to the interpreted micro-step
expansion. Both paths must be indistinguishable from writing the loop out
by hand: identical results, bit-identical per-rank virtual clocks,
byte-identical traces. Every deopt reason is exercised here and counted
via ``Engine.kernel_deopts``.
"""

import numpy as np
import pytest

from repro.simmpi import ANY_SOURCE, Engine, KernelLoop, TraceRecorder
from repro.simmpi.collectives import max_op, sum_op
from repro.simmpi.errors import MatchingError

from test_fast_collectives import two_level_network  # same-directory module

RING_TAG = 7
RING_BYTES = 1 << 14


def _ring_ops(comm):
    """Persistent ring wave: send right, receive from the left."""
    right = (comm.rank + 1) % comm.size
    left = (comm.rank - 1) % comm.size
    send = comm.send_init(
        None, dest=right, tag=RING_TAG, nbytes=RING_BYTES, kind="ring"
    )
    recv = comm.recv_init(source=left, tag=RING_TAG)
    start = comm.start_all_op((send, recv))
    drain = comm.waitall_op((recv,))
    return start, drain


def kernel_ring_program(iterations):
    def program(ctx):
        start, drain = _ring_ops(ctx.comm)
        results = yield KernelLoop(start, drain, iterations)
        return results

    return program


def interpreted_ring_program(iterations):
    def program(ctx):
        start, drain = _ring_ops(ctx.comm)
        results = None
        for _ in range(iterations):
            yield start
            results = yield drain
        return results

    return program


def run_engine(program, size, **engine_kwargs):
    tracer = TraceRecorder(size, by_kind=True)
    engine = Engine(
        size, network=two_level_network(), tracer=tracer, **engine_kwargs
    )
    results = engine.run(program)
    return {
        "results": results,
        "clocks": engine.rank_times(),
        "tracer": tracer,
        "engine": engine,
    }


def assert_records_equal(ref, other, what):
    assert ref["results"] == other["results"], f"{what}: results diverge"
    assert ref["clocks"] == other["clocks"], f"{what}: clocks diverge"
    np.testing.assert_array_equal(
        ref["tracer"].bytes_matrix, other["tracer"].bytes_matrix
    )
    np.testing.assert_array_equal(
        ref["tracer"].count_matrix, other["tracer"].count_matrix
    )
    assert sorted(ref["tracer"].kind_matrices) == sorted(
        other["tracer"].kind_matrices
    )
    for kind, mat in ref["tracer"].kind_matrices.items():
        np.testing.assert_array_equal(mat, other["tracer"].kind_matrices[kind])


class TestKernelEquivalence:
    @pytest.mark.parametrize("size,iterations", [(2, 1), (4, 5), (8, 12)])
    def test_matches_interpreted_loop(self, size, iterations):
        ref = run_engine(interpreted_ring_program(iterations), size)
        kern = run_engine(kernel_ring_program(iterations), size)
        assert_records_equal(ref, kern, "kernel vs hand-written loop")
        assert kern["engine"].kernel_runs == 1
        assert kern["engine"].kernel_iterations == iterations
        assert kern["engine"].kernel_deopts == {}

    def test_interpreted_kernel_op_matches_too(self, size=4, iterations=6):
        """``use_kernels=False`` still executes the op — via micro-steps."""
        ref = run_engine(interpreted_ring_program(iterations), size)
        micro = run_engine(
            kernel_ring_program(iterations), size, use_kernels=False
        )
        assert_records_equal(ref, micro, "micro-step kernel op vs loop")
        assert micro["engine"].kernel_runs == 0
        assert micro["engine"].kernel_deopts.get("engine-gated") == size

    def test_sequential_kernels_reuse_the_compiled_kernel(self):
        """Chunked loops (same ops, several KernelLoop yields) hit the
        kernel cache: one compilation, one run per chunk."""

        def program(ctx):
            start, drain = _ring_ops(ctx.comm)
            for chunk in (3, 4):
                yield KernelLoop(start, drain, chunk)
            return "ok"

        def interpreted(ctx):
            start, drain = _ring_ops(ctx.comm)
            for _ in range(7):
                yield start
                yield drain
            return "ok"

        ref = run_engine(interpreted, 4)
        kern = run_engine(program, 4)
        assert_records_equal(ref, kern, "chunked kernels vs loop")
        assert kern["engine"].kernel_runs == 2
        assert kern["engine"].kernel_iterations == 7

    def test_fused_collective_window(self):
        """A trailing allreduce rides in the kernel's fused window and the
        per-rank result comes back through the (results, window) reply."""

        def kernelized(ctx):
            comm = ctx.comm
            start, drain = _ring_ops(comm)
            _, window = yield KernelLoop(
                start, drain, 4, (comm.allreduce_op(float(ctx.rank), sum_op),)
            )
            return window[0]

        def interpreted(ctx):
            comm = ctx.comm
            start, drain = _ring_ops(comm)
            for _ in range(4):
                yield start
                yield drain
            total = yield from comm.allreduce(float(ctx.rank), sum_op)
            return total

        ref = run_engine(interpreted, 4)
        kern = run_engine(kernelized, 4)
        assert_records_equal(ref, kern, "fused window vs trailing allreduce")
        assert kern["results"] == [6.0] * 4
        assert kern["engine"].kernel_runs == 1

    def test_multi_collective_window(self):
        """Back-to-back same-group collectives fuse into one window."""

        def kernelized(ctx):
            comm = ctx.comm
            start, drain = _ring_ops(comm)
            _, window = yield KernelLoop(
                start,
                drain,
                3,
                (
                    comm.allreduce_op(float(ctx.rank), sum_op),
                    comm.allreduce_op(float(ctx.rank), max_op),
                ),
            )
            return window

        def interpreted(ctx):
            comm = ctx.comm
            start, drain = _ring_ops(comm)
            for _ in range(3):
                yield start
                yield drain
            total = yield from comm.allreduce(float(ctx.rank), sum_op)
            peak = yield from comm.allreduce(float(ctx.rank), max_op)
            return [total, peak]

        ref = run_engine(interpreted, 4)
        kern = run_engine(kernelized, 4)
        assert_records_equal(ref, kern, "two-collective window")
        assert kern["results"] == [[6.0, 3.0]] * 4

    def test_results_are_final_iteration_payloads(self):
        """The reply is the last drain's payload list (captured sends
        deliver real payloads; intermediate iterations are discarded)."""

        def program(ctx):
            comm = ctx.comm
            start, drain = _ring_ops(comm)
            results = yield KernelLoop(start, drain, 3)
            return results

        out = run_engine(program, 2)
        # Synthetic (metadata-only) waves drain ``None`` payloads.
        assert out["results"] == [[None]] * 2


class TestKernelDeopts:
    def test_engine_gated_by_message_log(self):
        iterations = 4

        class Log:
            def __init__(self):
                self.entries = []

            def wants(self, src, dst):
                return True

            def record(self, src, dst, tag, payload, nbytes, kind):
                self.entries.append((src, dst, tag, nbytes, kind))

        def with_log(use_kernels):
            tracer = TraceRecorder(4, by_kind=True)
            engine = Engine(
                4,
                network=two_level_network(),
                tracer=tracer,
                use_kernels=use_kernels,
            )
            engine.message_log = Log()
            results = engine.run(kernel_ring_program(iterations))
            return {
                "results": results,
                "clocks": engine.rank_times(),
                "tracer": tracer,
                "engine": engine,
            }

        gated = with_log(True)
        micro = with_log(False)
        assert_records_equal(micro, gated, "message_log gating")
        assert gated["engine"].kernel_runs == 0
        assert gated["engine"].kernel_deopts.get("engine-gated") == 4
        assert (
            gated["engine"].message_log.entries
            == micro["engine"].message_log.entries
        )

    def test_partial_world_deopts(self):
        """One rank looping by hand denies the whole-world hold."""
        iterations = 5

        def mixed(kernel_half):
            def program(ctx):
                start, drain = _ring_ops(ctx.comm)
                if kernel_half and ctx.rank % 2 == 0:
                    yield KernelLoop(start, drain, iterations)
                else:
                    for _ in range(iterations):
                        yield start
                        yield drain
                return ctx.rank

            return program

        ref = run_engine(mixed(False), 4)
        kern = run_engine(mixed(True), 4)
        assert_records_equal(ref, kern, "partial world")
        assert kern["engine"].kernel_runs == 0
        assert kern["engine"].kernel_deopts.get("partial-world") == 1

    def test_iteration_mismatch_deopts(self):
        """Unequal iteration counts interpret correctly (self-traffic so
        the program stays matched either way)."""

        def self_program(kernel):
            def program(ctx):
                comm = ctx.comm
                send = comm.send_init(
                    None, dest=comm.rank, tag=3, nbytes=64, kind="self"
                )
                recv = comm.recv_init(source=comm.rank, tag=3)
                start = comm.start_all_op((send, recv))
                drain = comm.waitall_op((recv,))
                n = 2 + ctx.rank
                if kernel:
                    yield KernelLoop(start, drain, n)
                else:
                    for _ in range(n):
                        yield start
                        yield drain
                return n

            return program

        ref = run_engine(self_program(False), 3)
        kern = run_engine(self_program(True), 3)
        assert_records_equal(ref, kern, "iteration mismatch")
        assert kern["engine"].kernel_runs == 0
        assert kern["engine"].kernel_deopts.get("iteration-mismatch") == 1

    def test_wildcard_recv_deopts(self):
        def wild(kernel):
            def program(ctx):
                comm = ctx.comm
                right = (comm.rank + 1) % comm.size
                send = comm.send_init(
                    None, dest=right, tag=RING_TAG, nbytes=256, kind="ring"
                )
                recv = comm.recv_init(source=ANY_SOURCE, tag=RING_TAG)
                start = comm.start_all_op((send, recv))
                drain = comm.waitall_op((recv,))
                if kernel:
                    yield KernelLoop(start, drain, 3)
                else:
                    for _ in range(3):
                        yield start
                        yield drain
                return None

            return program

        ref = run_engine(wild(False), 4)
        kern = run_engine(wild(True), 4)
        assert_records_equal(ref, kern, "wildcard recv")
        assert kern["engine"].kernel_runs == 0
        assert kern["engine"].kernel_deopts.get("wildcard-recv") == 1

    def test_capture_send_deopts(self):
        """Payload-capturing sends can change per iteration — the kernel
        refuses them and the micro-step path delivers real payloads."""

        def captured(kernel):
            def program(ctx):
                comm = ctx.comm
                right = (comm.rank + 1) % comm.size
                left = (comm.rank - 1) % comm.size
                buf = np.full(4, float(ctx.rank))
                send = comm.send_init(buf, dest=right, tag=9, kind="ring")
                recv = comm.recv_init(source=left, tag=9)
                start = comm.start_all_op((send, recv))
                drain = comm.waitall_op((recv,))
                if kernel:
                    results = yield KernelLoop(start, drain, 2)
                else:
                    for _ in range(2):
                        yield start
                        results = yield drain
                return [float(r[0]) for r in results]

            return program

        ref = run_engine(captured(False), 4)
        kern = run_engine(captured(True), 4)
        assert_records_equal(ref, kern, "capture send")
        assert kern["results"] == [[3.0], [0.0], [1.0], [2.0]]
        assert kern["engine"].kernel_runs == 0
        assert kern["engine"].kernel_deopts.get("capture-send") == 1

    def test_no_traffic_deopts(self):
        """A single-rank world with an empty wave spins interpretively."""

        def program(ctx):
            comm = ctx.comm
            start = comm.start_all_op(())
            drain = comm.waitall_op(())
            yield KernelLoop(start, drain, 4)
            return "done"

        out = run_engine(program, 1)
        assert out["results"] == ["done"]
        assert out["engine"].kernel_runs == 0
        assert out["engine"].kernel_deopts.get("no-traffic") == 1


class TestKernelValidation:
    def test_zero_iterations_rejected(self):
        def program(ctx):
            start, drain = _ring_ops(ctx.comm)
            yield KernelLoop(start, drain, 0)

        with pytest.raises(MatchingError):
            run_engine(program, 2)

    def test_wrong_op_types_rejected(self):
        def program(ctx):
            start, drain = _ring_ops(ctx.comm)
            yield KernelLoop(drain, start, 2)

        with pytest.raises(MatchingError):
            run_engine(program, 2)
