"""Engine-equivalence suite: fast-path collectives vs the generator cascade.

Every test runs the same rank program twice — once with
``use_fast_collectives=False`` (the point-to-point cascade reference) and
once with the vectorized fast path — under a non-trivial two-level network,
and asserts the runs are indistinguishable: same results, same per-rank
virtual clocks (exact float equality), same trace matrices (bytes, counts,
per-kind), with and without failure injection.
"""

import numpy as np
import pytest

from repro.simmpi import (
    DeadlockError,
    Engine,
    LinkParameters,
    NetworkModel,
    TraceRecorder,
)
from repro.simmpi.collectives import max_op, sum_op

SIZES = [2, 3, 4, 5, 8, 13]


def two_level_network() -> NetworkModel:
    """Four ranks per node, distinct intra/inter links — clock-sensitive."""
    return NetworkModel(
        intra_node=LinkParameters(1e-7, 2e9),
        inter_node=LinkParameters(7e-6, 1e8),
        locator=lambda rank: rank // 4,
    )


def _structurally_equal(a, b) -> bool:
    if isinstance(a, np.ndarray) or isinstance(b, np.ndarray):
        return (
            isinstance(a, np.ndarray)
            and isinstance(b, np.ndarray)
            and a.shape == b.shape
            and bool((a == b).all())
        )
    if isinstance(a, dict) and isinstance(b, dict):
        return a.keys() == b.keys() and all(
            _structurally_equal(a[k], b[k]) for k in a
        )
    if isinstance(a, (list, tuple)) and isinstance(b, (list, tuple)):
        return (
            type(a) is type(b)
            and len(a) == len(b)
            and all(_structurally_equal(x, y) for x, y in zip(a, b))
        )
    return type(a) is type(b) and a == b


def run_pair(program, size, *, failure_ranks=()):
    """Run ``program`` on both engine variants; return both run records."""
    records = []
    for fast in (False, True):
        tracer = TraceRecorder(size, by_kind=True)
        engine = Engine(
            size,
            network=two_level_network(),
            tracer=tracer,
            use_fast_collectives=fast,
        )
        engine.failure_ranks.update(failure_ranks)
        results = engine.run(program)
        records.append(
            {
                "results": results,
                "clocks": engine.rank_times(),
                "tracer": tracer,
                "fast_runs": engine.fast_collectives_run,
            }
        )
    return records


def assert_equivalent(program, size, *, expect_fast=True, failure_ranks=()):
    slow, fast = run_pair(program, size, failure_ranks=failure_ranks)
    assert _structurally_equal(slow["results"], fast["results"])
    assert slow["clocks"] == fast["clocks"], "virtual clocks diverged"
    ts, tf = slow["tracer"], fast["tracer"]
    np.testing.assert_array_equal(ts.bytes_matrix, tf.bytes_matrix)
    np.testing.assert_array_equal(ts.count_matrix, tf.count_matrix)
    assert sorted(ts.kind_matrices) == sorted(tf.kind_matrices)
    for kind, mat in ts.kind_matrices.items():
        np.testing.assert_array_equal(mat, tf.kind_matrices[kind])
    assert ts.total_messages == tf.total_messages
    assert ts.total_bytes == tf.total_bytes
    assert slow["fast_runs"] == 0
    if expect_fast and size > 1:
        assert fast["fast_runs"] > 0, "fast path never engaged"
    return slow, fast


@pytest.mark.parametrize("size", SIZES)
class TestCollectiveEquivalence:
    def test_bcast(self, size):
        root = size - 1

        def program(ctx):
            ctx.advance(0.001 * ctx.rank)  # staggered entry clocks
            obj = {"w": np.arange(6) + 1, "n": 3} if ctx.rank == root else None
            got = yield from ctx.comm.bcast(obj, root=root)
            return got

        assert_equivalent(program, size)

    def test_reduce_nonzero_root(self, size):
        root = size // 2

        def program(ctx):
            ctx.advance(0.002 * ((ctx.rank * 7) % 5))
            value = np.full(4, ctx.rank + 1, dtype=np.float64)
            return (yield from ctx.comm.reduce(value, sum_op, root=root))

        assert_equivalent(program, size)

    def test_allreduce(self, size):
        def program(ctx):
            ctx.advance(0.0005 * ctx.rank)
            return (yield from ctx.comm.allreduce(float(ctx.rank), max_op))

        assert_equivalent(program, size)

    def test_allgather(self, size):
        def program(ctx):
            ctx.advance(0.001 * (size - ctx.rank))
            return (yield from ctx.comm.allgather((ctx.rank, ctx.rank * 2)))

        assert_equivalent(program, size)

    def test_allgather_array_payloads(self, size):
        def program(ctx):
            block = np.arange(ctx.rank + 1, dtype=np.int64)
            return (yield from ctx.comm.allgather(block))

        assert_equivalent(program, size)

    def test_alltoall(self, size):
        def program(ctx):
            values = [
                {"from": ctx.rank, "to": d, "pad": b"x" * (d + 1)}
                for d in range(size)
            ]
            return (yield from ctx.comm.alltoall(values))

        assert_equivalent(program, size)

    def test_barrier_then_clock_sensitive_send(self, size):
        def program(ctx):
            ctx.advance(0.01 * ctx.rank)
            yield from ctx.comm.barrier()
            # Post-barrier p2p ring: arrival times depend on the barrier's
            # exact per-rank exit clocks, so clock drift would surface here.
            dst = (ctx.rank + 1) % size
            src = (ctx.rank - 1) % size
            yield from ctx.comm.isend(None, dest=dst, tag=1, nbytes=512)
            yield from ctx.comm.recv(source=src, tag=1)
            return ctx.now

        assert_equivalent(program, size)

    def test_back_to_back_collectives(self, size):
        def program(ctx):
            total = yield from ctx.comm.allreduce(ctx.rank + 1)
            everyone = yield from ctx.comm.allgather(total)
            top = yield from ctx.comm.reduce(max(everyone), max_op, root=0)
            return (yield from ctx.comm.bcast(top, root=0))

        assert_equivalent(program, size)


class TestMixedPrograms:
    def test_collectives_interleaved_with_p2p_and_split(self):
        size = 8

        def program(ctx):
            comm = ctx.comm
            ctx.advance(0.003 * (ctx.rank % 3))
            ids = yield from comm.allgather(ctx.rank)
            row = yield from comm.split(color=ctx.rank // 4, key=ctx.rank)
            # Sub-communicator collectives fast-path too (group-aware).
            row_sum = yield from row.allreduce(ctx.rank)
            partner = ctx.rank ^ 1
            yield from comm.isend(row_sum, dest=partner, tag=3)
            other = yield from comm.recv(source=partner, tag=3)
            total = yield from comm.allreduce(other)
            return (ids, row_sum, total, ctx.now)

        assert_equivalent(program, size)

    def test_world_sized_split_fast_paths_as_its_own_group(self):
        """A split covering all ranks yields a non-world comm id; its group
        is registered at split time, so its collectives fast-path too —
        equivalently to the cascade."""
        size = 4

        def program(ctx):
            clone = yield from ctx.comm.split(color=0, key=ctx.rank)
            assert clone.comm_id != 0
            return (yield from clone.allreduce(ctx.rank))

        slow, fast = assert_equivalent(program, size)
        # The split's world allgather plus the clone's allreduce.
        assert fast["fast_runs"] == 2


class TestFailureInjection:
    def test_bcast_with_failed_root_behaves_identically(self):
        size = 4

        def program(ctx):
            return (yield from ctx.comm.bcast("payload", root=0))

        for fast in (False, True):
            engine = Engine(
                size, network=two_level_network(), use_fast_collectives=fast
            )
            engine.failure_ranks.add(0)
            with pytest.raises(DeadlockError):
                engine.run(program)
            assert engine.fast_collectives_run == 0

    def test_allreduce_with_failure_matches_cascade(self):
        """A failure forces the cascade on both variants; survivors (none
        here reach completion) and the error shape must agree."""
        size = 4

        def program(ctx):
            if ctx.rank == 3:
                yield from ctx.comm.isend(None, dest=3, tag=9)
                yield from ctx.comm.recv(source=3, tag=9)
                return "local"
            return (yield from ctx.comm.allreduce(ctx.rank))

        outcomes = []
        for fast in (False, True):
            engine = Engine(
                size, network=two_level_network(), use_fast_collectives=fast
            )
            engine.failure_ranks.add(1)
            try:
                engine.run(program)
                outcomes.append(("ok", None))
            except DeadlockError as err:
                outcomes.append(("deadlock", sorted(err.blocked)))
        assert outcomes[0] == outcomes[1]

    def test_failure_free_ranks_unaffected(self):
        size = 3

        def program(ctx):
            if ctx.rank == 2:
                if False:
                    yield
                return "bystander"
            yield from ctx.comm.isend("x", dest=1 - ctx.rank, tag=0)
            got = yield from ctx.comm.recv(source=1 - ctx.rank, tag=0)
            return got

        for fast in (False, True):
            engine = Engine(size, use_fast_collectives=fast)
            results = engine.run(program)
            assert results == ["x", "x", "bystander"]


class TestEligibilityGates:
    def _collective_program(self, ctx):
        return (yield from ctx.comm.allreduce(1))

    def test_message_log_forces_cascade(self):
        class LogAll:
            def __init__(self):
                self.records = []

            def wants(self, src, dst):
                return True

            def record(self, *args):
                self.records.append(args)

        engine = Engine(4)
        log = LogAll()
        engine.message_log = log
        assert engine.run(self._collective_program) == [4] * 4
        assert engine.fast_collectives_run == 0
        assert log.records, "cascade messages must reach the payload log"

    def test_recv_count_tracking_forces_cascade(self):
        engine = Engine(4)
        engine.track_recv_counts = True
        assert engine.run(self._collective_program) == [4] * 4
        assert engine.fast_collectives_run == 0
        assert sum(engine.recv_counts.values()) > 0

    def test_recv_counts_not_tracked_by_default(self):
        engine = Engine(4)
        engine.run(self._collective_program)
        assert engine.recv_counts == {}

    def test_fast_path_active_by_default(self):
        engine = Engine(4)
        assert engine.run(self._collective_program) == [4] * 4
        assert engine.fast_collectives_run == 1
