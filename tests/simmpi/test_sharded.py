"""Sharded multi-process engine: byte-identity, invariance, deadlocks.

The contract under test: for any in-tree workload, a sharded run must be
*exactly* the single-process run — byte-identical trace matrices,
bit-identical per-rank virtual clocks, equal results — for every shard
count and every worker count (including ``workers=0``, the in-process
host over the same window protocol).
"""

import numpy as np
import pytest

from repro.apps import HeatConfig, SpectralConfig, TsunamiConfig
from repro.apps.workload import (
    HeatWorkload,
    ProgramsWorkload,
    SpectralWorkload,
    TsunamiWorkload,
    fig5_workload,
)
from repro.simmpi import (
    DeadlockError,
    Engine,
    EngineConfig,
    ShardedEngine,
    SparseTraceRecorder,
    TraceRecorder,
    partition_workload,
)


def _reference(workload, *, network=None):
    tracer = TraceRecorder(workload.nranks, by_kind=True)
    engine = Engine(workload.nranks, network=network, tracer=tracer)
    states = engine.run(workload.build_programs())
    return states, engine.rank_times(), tracer


def _sharded(workload, shards, workers=0, *, network=None):
    tracer = TraceRecorder(workload.nranks, by_kind=True)
    engine = ShardedEngine(
        shards, workers=workers, network=network, tracer=tracer
    )
    states = engine.run(workload)
    return states, engine.rank_times(), tracer, engine


def _assert_tracers_equal(a, b):
    np.testing.assert_array_equal(a.bytes_matrix, b.bytes_matrix)
    np.testing.assert_array_equal(a.count_matrix, b.count_matrix)
    assert sorted(a.kind_matrices) == sorted(b.kind_matrices)
    for kind in a.kind_matrices:
        np.testing.assert_array_equal(
            a.kind_matrices[kind], b.kind_matrices[kind]
        )


def _heat_workload(**kw):
    defaults = dict(px=2, py=4, nx=16, ny=32, iterations=8)
    defaults.update(kw)
    return HeatWorkload(HeatConfig(**defaults))


class TestPartitioner:
    def test_balanced_contiguous(self):
        parts = partition_workload(_heat_workload(), 4)
        assert parts == [(0, 1), (2, 3), (4, 5), (6, 7)]

    def test_single_shard_owns_world(self):
        parts = partition_workload(_heat_workload(), 1)
        assert parts == [tuple(range(8))]

    def test_atoms_never_split(self):
        """FTI node blocks (encoder + its app ranks) stay co-resident."""
        workload = fig5_workload(nodes=4, app_per_node=4, iterations=2)
        atoms = workload.shard_atoms()
        for shards in (2, 3, 4):
            for part in partition_workload(workload, shards):
                covered = set(part)
                for atom in atoms:
                    assert (
                        set(atom) <= covered or not covered & set(atom)
                    ), f"atom {atom} split by {part}"

    def test_more_shards_than_atoms_rejected(self):
        workload = fig5_workload(nodes=2, app_per_node=2, iterations=2)
        with pytest.raises(ValueError, match="indivisible atom"):
            partition_workload(workload, 3)

    def test_uneven_split_stays_balanced(self):
        def idle(ctx):
            if False:
                yield

        workload = ProgramsWorkload([idle] * 10)
        parts = partition_workload(workload, 4)
        assert [len(p) for p in parts] == [3, 2, 3, 2]
        assert sorted(r for p in parts for r in p) == list(range(10))

    def test_bad_atoms_rejected(self):
        def idle(ctx):
            if False:
                yield

        workload = ProgramsWorkload([idle] * 4, atoms=[(0, 1), (1, 2, 3)])
        with pytest.raises(ValueError, match="exactly once"):
            partition_workload(workload, 2)


class TestByteIdentity:
    """Sharded == single-process, exactly, on every in-tree workload."""

    @pytest.mark.parametrize("shards", [1, 2, 4])
    def test_heat_real_payload(self, shards):
        workload = _heat_workload()
        ref_states, ref_clocks, ref_tracer = _reference(workload)
        states, clocks, tracer, _ = _sharded(workload, shards)
        assert clocks == ref_clocks
        _assert_tracers_equal(tracer, ref_tracer)
        for state, ref in zip(states, ref_states):
            np.testing.assert_array_equal(state["t"], ref["t"])

    @pytest.mark.parametrize("shards", [2, 4])
    def test_tsunami_cross_shard_allreduce(self, shards):
        workload = TsunamiWorkload(
            TsunamiConfig(
                px=2, py=4, nx=16, ny=32, iterations=8, allreduce_every=3
            )
        )
        ref_states, ref_clocks, ref_tracer = _reference(workload)
        states, clocks, tracer, engine = _sharded(workload, shards)
        assert clocks == ref_clocks
        _assert_tracers_equal(tracer, ref_tracer)
        assert engine.fast_collectives_run > 0  # allreduces crossed shards
        for state, ref in zip(states, ref_states):
            np.testing.assert_array_equal(state["eta"], ref["eta"])

    def test_spectral_all_to_all(self):
        workload = SpectralWorkload(
            SpectralConfig(nranks=8, n=16, iterations=3)
        )
        _, ref_clocks, ref_tracer = _reference(workload)
        _, clocks, tracer, _ = _sharded(workload, 4)
        assert clocks == ref_clocks
        _assert_tracers_equal(tracer, ref_tracer)

    @pytest.mark.parametrize("shards", [1, 4])
    def test_fig5_world(self, shards):
        """The §V control traffic: wildcard gathers, checkpoint rings."""
        workload = fig5_workload(
            nodes=4, app_per_node=4, iterations=6, checkpoint_every=2
        )
        _, ref_clocks, ref_tracer = _reference(workload)
        _, clocks, tracer, _ = _sharded(workload, shards)
        assert clocks == ref_clocks
        _assert_tracers_equal(tracer, ref_tracer)

    def test_sparse_recorder_matches_dense(self):
        workload = _heat_workload()
        _, _, ref_tracer = _reference(workload)
        sparse = SparseTraceRecorder(workload.nranks, by_kind=True)
        ShardedEngine(4, tracer=sparse).run(workload)
        _assert_tracers_equal(sparse.to_dense(), ref_tracer)

    def test_counters_aggregate(self):
        workload = _heat_workload()
        _, _, _, engine = _sharded(workload, 2)
        single = Engine(workload.nranks)
        single.run(workload.build_programs())
        assert engine.kernel_iterations == single.kernel_iterations


class TestWorkerInvariance:
    """Identical observables whether shards run in-process or in workers."""

    @pytest.mark.parametrize("workers", [0, 1, 2, 4])
    def test_fig5_worker_count(self, workers):
        workload = fig5_workload(nodes=4, app_per_node=4, iterations=4)
        _, ref_clocks, ref_tracer = _reference(workload)
        _, clocks, tracer, _ = _sharded(workload, 4, workers)
        assert clocks == ref_clocks
        _assert_tracers_equal(tracer, ref_tracer)


def _recv_from_one(ctx):
    message = yield from ctx.comm.recv(source=1, tag=7)
    return message


def _recv_from_zero(ctx):
    message = yield from ctx.comm.recv(source=0, tag=7)
    return message


def _allreduce_member(ctx):
    total = yield from ctx.comm.allreduce(ctx.rank)
    return total


def _never_joins(ctx):
    if False:
        yield
    return None


class TestDeadlocks:
    def test_cross_shard_p2p_cycle(self):
        engine = ShardedEngine(2)
        with pytest.raises(DeadlockError) as err:
            engine.run(ProgramsWorkload([_recv_from_one, _recv_from_zero]))
        assert set(err.value.blocked) == {0, 1}
        assert "recv from 1" in err.value.blocked[0]

    def test_cross_shard_collective_names_missing_member(self):
        """The stuck group's attribution carries the *global* gather."""
        programs = [
            _allreduce_member,
            _allreduce_member,
            _never_joins,
            _allreduce_member,
        ]
        engine = ShardedEngine(2)
        with pytest.raises(DeadlockError) as err:
            engine.run(ProgramsWorkload(programs))
        assert set(err.value.blocked) == {0, 1, 3}
        for description in err.value.blocked.values():
            assert "gathered 3/4" in description
            assert "missing world rank(s) [2]" in description

    def test_deadlock_through_worker_process(self):
        """Module-level programs pickle, so the worker path deadlocks too."""
        engine = ShardedEngine(2, workers=2)
        with pytest.raises(DeadlockError) as err:
            engine.run(ProgramsWorkload([_recv_from_one, _recv_from_zero]))
        assert set(err.value.blocked) == {0, 1}


class TestValidation:
    def test_interleaving_exploration_rejected(self):
        with pytest.raises(ValueError, match="single-process only"):
            ShardedEngine(2, config=EngineConfig(schedule_seed=7))

    def test_non_workload_rejected(self):
        engine = ShardedEngine(1)
        with pytest.raises(TypeError, match="ProgramsWorkload"):
            engine.run([lambda ctx: iter(())])

    def test_tracer_size_mismatch_rejected(self):
        engine = ShardedEngine(1, tracer=TraceRecorder(4))
        with pytest.raises(ValueError, match="tracer covers 4"):
            engine.run(_heat_workload())

    def test_unpicklable_workload_needs_inline_host(self):
        captured = {}

        def closure(ctx):
            captured["ran"] = True
            if False:
                yield

        workload = ProgramsWorkload([closure, closure])
        with pytest.raises(TypeError, match="workers=0"):
            ShardedEngine(2, workers=2).run(workload)
        ShardedEngine(2, workers=0).run(workload)  # inline host accepts it
        assert captured["ran"]

    def test_bad_shard_and_worker_counts(self):
        with pytest.raises(ValueError):
            ShardedEngine(0)
        with pytest.raises(ValueError):
            ShardedEngine(2, workers=-1)


class TestConfigReplication:
    def test_per_message_config_is_replicated_to_shards(self):
        """A non-default EngineConfig reaches every shard engine."""
        workload = _heat_workload(iterations=4)
        config = EngineConfig(
            use_batched_p2p=False, use_kernels=False, pool_capacity=8
        )
        ref_tracer = TraceRecorder(workload.nranks, by_kind=True)
        Engine(workload.nranks, config=config, tracer=ref_tracer).run(
            workload.build_programs()
        )
        tracer = TraceRecorder(workload.nranks, by_kind=True)
        engine = ShardedEngine(2, config=config, tracer=tracer)
        engine.run(workload)
        _assert_tracers_equal(tracer, ref_tracer)
        assert engine.kernel_runs == 0  # kernels disabled everywhere
