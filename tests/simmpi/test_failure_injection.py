"""Engine-level failure injection (the RankFailedError path)."""

import pytest

from repro.simmpi import DeadlockError, Engine, KernelLoop, RankFailedError


class TestFailureRanks:
    def test_failed_rank_terminates_without_result(self):
        """Failure strikes at the rank's next communication point."""
        engine = Engine(2)
        engine.failure_ranks.add(1)

        def program(ctx):
            yield from ctx.comm.isend(ctx.rank, dest=ctx.rank, tag=0)
            return f"done-{ctx.rank}"

        results = engine.run(program)
        assert results[0] == "done-0"
        assert results[1] is None

    def test_purely_local_program_outruns_the_failure(self):
        """A rank that never communicates cannot observe the injection —
        crashes are modeled at communication points only."""
        engine = Engine(1)
        engine.failure_ranks.add(0)

        def program(ctx):
            ctx.advance(1.0)
            if False:
                yield
            return "local-only"

        assert engine.run(program) == ["local-only"]

    def test_program_can_catch_and_cleanup(self):
        """Programs may intercept the injected failure for cleanup, but the
        engine still terminates them."""
        cleaned = []

        def program(ctx):
            try:
                yield from ctx.comm.barrier()
            except RankFailedError:
                cleaned.append(ctx.rank)
                raise
            return "survived"

        engine = Engine(2)
        engine.failure_ranks.add(0)
        with pytest.raises(DeadlockError):
            # Rank 1 blocks forever on the barrier with a dead partner:
            # exactly the real-world symptom of an unhandled rank death.
            engine.run(program)
        assert cleaned == [0]

    def test_partner_of_failed_rank_deadlocks_visibly(self):
        def program(ctx):
            comm = ctx.comm
            if ctx.rank == 0:
                yield from comm.send("x", dest=1)
            else:
                yield from comm.recv(source=0)
            return None

        engine = Engine(2)
        engine.failure_ranks.add(0)
        with pytest.raises(DeadlockError) as err:
            engine.run(program)
        assert 1 in err.value.blocked


class TestKernelLoopFailures:
    """Failure injection must behave exactly as today when the steady
    loop arrives as a KernelLoop: active failures gate the vectorized
    path off, the micro-step expansion strikes at the same communication
    points, and deadlock attribution names the same stuck ranks."""

    @staticmethod
    def _ring_program(kernel, iterations=3):
        def program(ctx):
            comm = ctx.comm
            right = (comm.rank + 1) % comm.size
            left = (comm.rank - 1) % comm.size
            send = comm.send_init(
                None, dest=right, tag=5, nbytes=512, kind="ring"
            )
            recv = comm.recv_init(source=left, tag=5)
            start = comm.start_all_op((send, recv))
            drain = comm.waitall_op((recv,))
            if kernel:
                yield KernelLoop(start, drain, iterations)
            else:
                for _ in range(iterations):
                    yield start
                    yield drain
            return f"done-{ctx.rank}"

        return program

    def test_rank_killed_mid_kernel_attributes_like_the_loop(self):
        """The dead rank's partner blocks at the same point either way."""
        blocked = {}
        for kernel in (False, True):
            engine = Engine(4)
            engine.failure_ranks.add(2)
            with pytest.raises(DeadlockError) as err:
                engine.run(self._ring_program(kernel))
            blocked[kernel] = set(err.value.blocked)
        assert blocked[True] == blocked[False]
        assert 3 in blocked[True]

    def test_failed_rank_terminates_without_result_in_kernel(self):
        """Self-traffic world: the failed rank dies at its first
        communication point, survivors finish — identically both ways."""

        def self_program(kernel):
            def program(ctx):
                comm = ctx.comm
                send = comm.send_init(
                    None, dest=comm.rank, tag=2, nbytes=64, kind="self"
                )
                recv = comm.recv_init(source=comm.rank, tag=2)
                start = comm.start_all_op((send, recv))
                drain = comm.waitall_op((recv,))
                if kernel:
                    yield KernelLoop(start, drain, 4)
                else:
                    for _ in range(4):
                        yield start
                        yield drain
                return f"done-{ctx.rank}"

            return program

        outcomes = {}
        for kernel in (False, True):
            engine = Engine(3)
            engine.failure_ranks.add(1)
            outcomes[kernel] = (
                engine.run(self_program(kernel)),
                engine.rank_times(),
                engine.kernel_runs,
            )
        assert outcomes[True][0] == outcomes[False][0] == [
            "done-0", None, "done-2"
        ]
        assert outcomes[True][1] == outcomes[False][1]
        # Active failures gate the vectorized kernel off entirely.
        assert outcomes[True][2] == 0

    def test_program_can_catch_failure_inside_kernel(self):
        """RankFailedError surfaces at the KernelLoop yield, where the
        program can clean up — exactly like a failure at `yield start`."""
        cleaned = []

        def program(ctx):
            comm = ctx.comm
            send = comm.send_init(
                None, dest=comm.rank, tag=4, nbytes=32, kind="self"
            )
            recv = comm.recv_init(source=comm.rank, tag=4)
            start = comm.start_all_op((send, recv))
            drain = comm.waitall_op((recv,))
            try:
                yield KernelLoop(start, drain, 2)
            except RankFailedError:
                cleaned.append(ctx.rank)
                raise
            return "survived"

        engine = Engine(2)
        engine.failure_ranks.add(0)
        results = engine.run(program)
        assert cleaned == [0]
        assert results == [None, "survived"]
