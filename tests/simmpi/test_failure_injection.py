"""Engine-level failure injection (the RankFailedError path)."""

import pytest

from repro.simmpi import DeadlockError, Engine, RankFailedError


class TestFailureRanks:
    def test_failed_rank_terminates_without_result(self):
        """Failure strikes at the rank's next communication point."""
        engine = Engine(2)
        engine.failure_ranks.add(1)

        def program(ctx):
            yield from ctx.comm.isend(ctx.rank, dest=ctx.rank, tag=0)
            return f"done-{ctx.rank}"

        results = engine.run(program)
        assert results[0] == "done-0"
        assert results[1] is None

    def test_purely_local_program_outruns_the_failure(self):
        """A rank that never communicates cannot observe the injection —
        crashes are modeled at communication points only."""
        engine = Engine(1)
        engine.failure_ranks.add(0)

        def program(ctx):
            ctx.advance(1.0)
            if False:
                yield
            return "local-only"

        assert engine.run(program) == ["local-only"]

    def test_program_can_catch_and_cleanup(self):
        """Programs may intercept the injected failure for cleanup, but the
        engine still terminates them."""
        cleaned = []

        def program(ctx):
            try:
                yield from ctx.comm.barrier()
            except RankFailedError:
                cleaned.append(ctx.rank)
                raise
            return "survived"

        engine = Engine(2)
        engine.failure_ranks.add(0)
        with pytest.raises(DeadlockError):
            # Rank 1 blocks forever on the barrier with a dead partner:
            # exactly the real-world symptom of an unhandled rank death.
            engine.run(program)
        assert cleaned == [0]

    def test_partner_of_failed_rank_deadlocks_visibly(self):
        def program(ctx):
            comm = ctx.comm
            if ctx.rank == 0:
                yield from comm.send("x", dest=1)
            else:
                yield from comm.recv(source=0)
            return None

        engine = Engine(2)
        engine.failure_ranks.add(0)
        with pytest.raises(DeadlockError) as err:
            engine.run(program)
        assert 1 in err.value.blocked
