"""Trace-recorder tests: accumulation, views, persistence, properties."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.simmpi import TraceRecorder


class TestRecord:
    def test_orientation_receiver_rows(self):
        """Matrix is [receiver, sender], matching Fig. 5's axes."""
        t = TraceRecorder(4)
        t.record(src=1, dst=2, nbytes=100)
        assert t.bytes_matrix[2, 1] == 100
        assert t.bytes_matrix[1, 2] == 0

    def test_accumulation(self):
        t = TraceRecorder(2)
        t.record(0, 1, 10)
        t.record(0, 1, 5)
        assert t.bytes_matrix[1, 0] == 15
        assert t.count_matrix[1, 0] == 2
        assert t.total_messages == 2
        assert t.total_bytes == 15

    def test_symmetric_view(self):
        t = TraceRecorder(3)
        t.record(0, 1, 10)
        t.record(1, 0, 4)
        sym = t.symmetric_bytes()
        assert sym[0, 1] == sym[1, 0] == 14

    def test_zoom(self):
        t = TraceRecorder(8)
        t.record(0, 1, 7)
        t.record(6, 7, 9)
        z = t.zoom(4)
        assert z.shape == (4, 4)
        assert z[1, 0] == 7

    def test_zoom_bounds(self):
        t = TraceRecorder(4)
        with pytest.raises(ValueError):
            t.zoom(5)
        with pytest.raises(ValueError):
            t.zoom(0)

    def test_invalid_size(self):
        with pytest.raises(ValueError):
            TraceRecorder(0)

    def test_kind_matrices(self):
        t = TraceRecorder(2, by_kind=True)
        t.record(0, 1, 10, kind="p2p")
        t.record(0, 1, 20, kind="allgather")
        assert t.kind_bytes("p2p")[1, 0] == 10
        assert t.kind_bytes("allgather")[1, 0] == 20
        assert t.kind_bytes("missing").sum() == 0

    def test_kind_requires_flag(self):
        t = TraceRecorder(2)
        with pytest.raises(RuntimeError):
            t.kind_bytes("p2p")


class TestPersistence:
    def test_save_load_roundtrip(self, tmp_path):
        t = TraceRecorder(4, by_kind=True)
        t.record(0, 1, 100, kind="p2p")
        t.record(2, 3, 50, kind="bcast")
        path = tmp_path / "trace.npz"
        t.save(path)
        loaded = TraceRecorder.load(path)
        np.testing.assert_array_equal(loaded.bytes_matrix, t.bytes_matrix)
        np.testing.assert_array_equal(loaded.count_matrix, t.count_matrix)
        np.testing.assert_array_equal(
            loaded.kind_bytes("bcast"), t.kind_bytes("bcast")
        )
        assert loaded.total_messages == 2
        assert loaded.total_bytes == 150


class TestProperties:
    @given(
        st.lists(
            st.tuples(
                st.integers(0, 7),
                st.integers(0, 7),
                st.integers(0, 10_000),
            ),
            max_size=50,
        )
    )
    def test_totals_are_conserved(self, events):
        """Sum of the matrix always equals the sum of recorded sizes."""
        t = TraceRecorder(8)
        for src, dst, n in events:
            t.record(src, dst, n)
        assert t.bytes_matrix.sum() == sum(n for _, _, n in events)
        assert t.count_matrix.sum() == len(events)

    @given(
        st.lists(
            st.tuples(st.integers(0, 5), st.integers(0, 5), st.integers(1, 100)),
            max_size=30,
        )
    )
    def test_symmetric_bytes_is_symmetric(self, events):
        t = TraceRecorder(6)
        for src, dst, n in events:
            t.record(src, dst, n)
        sym = t.symmetric_bytes()
        np.testing.assert_array_equal(sym, sym.T)
