"""Trace-recorder tests: accumulation, views, persistence, properties."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.simmpi import SparseTraceRecorder, TraceRecorder


class TestRecord:
    def test_orientation_receiver_rows(self):
        """Matrix is [receiver, sender], matching Fig. 5's axes."""
        t = TraceRecorder(4)
        t.record(src=1, dst=2, nbytes=100)
        assert t.bytes_matrix[2, 1] == 100
        assert t.bytes_matrix[1, 2] == 0

    def test_accumulation(self):
        t = TraceRecorder(2)
        t.record(0, 1, 10)
        t.record(0, 1, 5)
        assert t.bytes_matrix[1, 0] == 15
        assert t.count_matrix[1, 0] == 2
        assert t.total_messages == 2
        assert t.total_bytes == 15

    def test_symmetric_view(self):
        t = TraceRecorder(3)
        t.record(0, 1, 10)
        t.record(1, 0, 4)
        sym = t.symmetric_bytes()
        assert sym[0, 1] == sym[1, 0] == 14

    def test_zoom(self):
        t = TraceRecorder(8)
        t.record(0, 1, 7)
        t.record(6, 7, 9)
        z = t.zoom(4)
        assert z.shape == (4, 4)
        assert z[1, 0] == 7

    def test_zoom_bounds(self):
        t = TraceRecorder(4)
        with pytest.raises(ValueError):
            t.zoom(5)
        with pytest.raises(ValueError):
            t.zoom(0)

    def test_invalid_size(self):
        with pytest.raises(ValueError):
            TraceRecorder(0)

    def test_kind_matrices(self):
        t = TraceRecorder(2, by_kind=True)
        t.record(0, 1, 10, kind="p2p")
        t.record(0, 1, 20, kind="allgather")
        assert t.kind_bytes("p2p")[1, 0] == 10
        assert t.kind_bytes("allgather")[1, 0] == 20
        assert t.kind_bytes("missing").sum() == 0

    def test_kind_requires_flag(self):
        t = TraceRecorder(2)
        with pytest.raises(RuntimeError):
            t.kind_bytes("p2p")


class TestPersistence:
    def test_save_load_roundtrip(self, tmp_path):
        t = TraceRecorder(4, by_kind=True)
        t.record(0, 1, 100, kind="p2p")
        t.record(2, 3, 50, kind="bcast")
        path = tmp_path / "trace.npz"
        t.save(path)
        loaded = TraceRecorder.load(path)
        np.testing.assert_array_equal(loaded.bytes_matrix, t.bytes_matrix)
        np.testing.assert_array_equal(loaded.count_matrix, t.count_matrix)
        np.testing.assert_array_equal(
            loaded.kind_bytes("bcast"), t.kind_bytes("bcast")
        )
        assert loaded.total_messages == 2
        assert loaded.total_bytes == 150


class TestMerge:
    def test_dense_merge_sums_everything(self):
        a = TraceRecorder(3, by_kind=True)
        b = TraceRecorder(3, by_kind=True)
        a.record(0, 1, 10, kind="p2p")
        b.record(0, 1, 5, kind="p2p")
        b.record(2, 0, 7, kind="bcast")
        a.merge(b)
        assert a.bytes_matrix[1, 0] == 15
        assert a.count_matrix[1, 0] == 2
        assert a.kind_bytes("p2p")[1, 0] == 15
        assert a.kind_bytes("bcast")[0, 2] == 7
        assert a.total_messages == 3
        assert a.total_bytes == 22

    def test_merge_rejects_size_mismatch(self):
        with pytest.raises(ValueError):
            TraceRecorder(3).merge(TraceRecorder(4))

    def test_dense_absorbs_sparse(self):
        dense = TraceRecorder(4, by_kind=True)
        sparse = SparseTraceRecorder(4, by_kind=True)
        sparse.record(1, 2, 30, kind="p2p")
        sparse.record(1, 2, 10, kind="p2p")
        dense.merge(sparse)
        assert dense.bytes_matrix[2, 1] == 40
        assert dense.count_matrix[2, 1] == 2
        assert dense.kind_bytes("p2p")[2, 1] == 40


class TestSparseRecorder:
    def test_records_without_dense_allocation(self):
        t = SparseTraceRecorder(1_000_000)  # dense would be 8 TB
        t.record(0, 999_999, 64)
        t.record(0, 999_999, 64)
        assert t.total_messages == 2
        assert t.total_bytes == 128

    def test_to_dense_matches_dense_recording(self):
        events = [(0, 1, 10, "p2p"), (2, 3, 5, "bcast"), (0, 1, 3, "p2p")]
        dense = TraceRecorder(4, by_kind=True)
        sparse = SparseTraceRecorder(4, by_kind=True)
        for src, dst, n, kind in events:
            dense.record(src, dst, n, kind=kind)
            sparse.record(src, dst, n, kind=kind)
        out = sparse.to_dense()
        np.testing.assert_array_equal(out.bytes_matrix, dense.bytes_matrix)
        np.testing.assert_array_equal(out.count_matrix, dense.count_matrix)
        np.testing.assert_array_equal(
            out.kind_bytes("p2p"), dense.kind_bytes("p2p")
        )

    def test_sparse_merge_sparse(self):
        a = SparseTraceRecorder(8)
        b = SparseTraceRecorder(8)
        a.record(0, 1, 10)
        b.record(0, 1, 1)
        b.record(5, 6, 2)
        a.merge(b)
        assert a.total_bytes == 13
        assert a.total_messages == 3
        assert a.to_dense().bytes_matrix[1, 0] == 11

    def test_record_many(self):
        sparse = SparseTraceRecorder(4)
        dense = TraceRecorder(4)
        srcs = np.array([0, 1, 1])
        dsts = np.array([2, 3, 3])
        nbytes = np.array([4.0, 8.0, 8.0])
        sparse.record_many(srcs, dsts, nbytes)
        dense.record_many(srcs, dsts, nbytes)
        np.testing.assert_array_equal(
            sparse.to_dense().bytes_matrix, dense.bytes_matrix
        )


class TestProperties:
    @given(
        st.lists(
            st.tuples(
                st.integers(0, 7),
                st.integers(0, 7),
                st.integers(0, 10_000),
            ),
            max_size=50,
        )
    )
    def test_totals_are_conserved(self, events):
        """Sum of the matrix always equals the sum of recorded sizes."""
        t = TraceRecorder(8)
        for src, dst, n in events:
            t.record(src, dst, n)
        assert t.bytes_matrix.sum() == sum(n for _, _, n in events)
        assert t.count_matrix.sum() == len(events)

    @given(
        st.lists(
            st.tuples(st.integers(0, 5), st.integers(0, 5), st.integers(1, 100)),
            max_size=30,
        )
    )
    def test_symmetric_bytes_is_symmetric(self, events):
        t = TraceRecorder(6)
        for src, dst, n in events:
            t.record(src, dst, n)
        sym = t.symmetric_bytes()
        np.testing.assert_array_equal(sym, sym.T)
