"""Collective-algorithm tests against straightforward oracles."""

import numpy as np
import pytest

from repro.simmpi import Engine, TraceRecorder, run_program
from repro.simmpi.collectives import max_op, min_op, prod_op, sum_op


@pytest.mark.parametrize("size", [1, 2, 3, 4, 5, 8, 13, 16])
class TestBcast:
    def test_bcast_from_zero(self, size):
        def program(ctx):
            obj = {"v": 99} if ctx.rank == 0 else None
            return (yield from ctx.comm.bcast(obj, root=0))

        assert run_program(program, size) == [{"v": 99}] * size

    def test_bcast_from_nonzero_root(self, size):
        root = size - 1

        def program(ctx):
            obj = "payload" if ctx.rank == root else None
            return (yield from ctx.comm.bcast(obj, root=root))

        assert run_program(program, size) == ["payload"] * size


@pytest.mark.parametrize("size", [1, 2, 3, 4, 7, 8, 16])
class TestReduce:
    def test_sum_to_root(self, size):
        def program(ctx):
            return (yield from ctx.comm.reduce(ctx.rank + 1, sum_op, root=0))

        results = run_program(program, size)
        assert results[0] == size * (size + 1) // 2
        assert all(r is None for r in results[1:])

    def test_max(self, size):
        def program(ctx):
            return (yield from ctx.comm.reduce(float(ctx.rank), max_op, root=0))

        assert run_program(program, size)[0] == size - 1

    def test_array_reduce(self, size):
        def program(ctx):
            data = np.full(3, ctx.rank, dtype=np.int64)
            return (yield from ctx.comm.reduce(data, sum_op, root=0))

        expected = np.full(3, sum(range(size)))
        np.testing.assert_array_equal(run_program(program, size)[0], expected)


@pytest.mark.parametrize("size", [1, 2, 3, 4, 6, 8, 16, 17])
class TestAllreduce:
    def test_sum(self, size):
        def program(ctx):
            return (yield from ctx.comm.allreduce(ctx.rank + 1, sum_op))

        assert run_program(program, size) == [size * (size + 1) // 2] * size

    def test_min(self, size):
        def program(ctx):
            return (yield from ctx.comm.allreduce(10 + ctx.rank, min_op))

        assert run_program(program, size) == [10] * size

    def test_prod(self, size):
        def program(ctx):
            v = 2 if ctx.rank == 0 else 1
            return (yield from ctx.comm.allreduce(v, prod_op))

        assert run_program(program, size) == [2] * size


@pytest.mark.parametrize("size", [1, 2, 3, 4, 5, 8, 12, 16, 17])
class TestAllgather:
    def test_gathers_in_rank_order(self, size):
        def program(ctx):
            return (yield from ctx.comm.allgather(ctx.rank * 2))

        expected = [r * 2 for r in range(size)]
        assert run_program(program, size) == [expected] * size

    def test_array_payloads(self, size):
        def program(ctx):
            data = np.arange(2) + 10 * ctx.rank
            chunks = yield from ctx.comm.allgather(data)
            return np.concatenate(chunks)

        expected = np.concatenate([np.arange(2) + 10 * r for r in range(size)])
        for result in run_program(program, size):
            np.testing.assert_array_equal(result, expected)


@pytest.mark.parametrize("size", [1, 2, 4, 5, 8])
class TestGatherScatter:
    def test_gather(self, size):
        def program(ctx):
            return (yield from ctx.comm.gather(chr(ord("a") + ctx.rank), root=0))

        results = run_program(program, size)
        assert results[0] == [chr(ord("a") + r) for r in range(size)]
        assert all(r is None for r in results[1:])

    def test_gather_nonzero_root(self, size):
        root = size - 1

        def program(ctx):
            return (yield from ctx.comm.gather(ctx.rank, root=root))

        results = run_program(program, size)
        assert results[root] == list(range(size))

    def test_scatter(self, size):
        def program(ctx):
            values = [f"item{i}" for i in range(size)] if ctx.rank == 0 else None
            return (yield from ctx.comm.scatter(values, root=0))

        assert run_program(program, size) == [f"item{i}" for i in range(size)]

    def test_scatter_wrong_length_raises(self, size):
        def program(ctx):
            values = [0] * (size + 1) if ctx.rank == 0 else None
            return (yield from ctx.comm.scatter(values, root=0))

        with pytest.raises(Exception):
            run_program(program, size)


@pytest.mark.parametrize("size", [1, 2, 3, 4, 8])
class TestAlltoall:
    def test_transpose_semantics(self, size):
        def program(ctx):
            values = [(ctx.rank, dst) for dst in range(size)]
            return (yield from ctx.comm.alltoall(values))

        results = run_program(program, size)
        for rank, received in enumerate(results):
            assert received == [(src, rank) for src in range(size)]


@pytest.mark.parametrize("size", [1, 2, 3, 5, 8])
class TestScan:
    def test_inclusive_prefix_sum(self, size):
        def program(ctx):
            return (yield from ctx.comm.scan(ctx.rank + 1, sum_op))

        expected = [sum(range(1, r + 2)) for r in range(size)]
        assert run_program(program, size) == expected


class TestBarrier:
    @pytest.mark.parametrize("size", [1, 2, 3, 4, 8, 13])
    def test_completes(self, size):
        def program(ctx):
            yield from ctx.comm.barrier()
            return "past"

        assert run_program(program, size) == ["past"] * size


class TestCollectiveTraces:
    def test_allgather_pow2_uses_xor_partners(self):
        """Recursive doubling puts traffic exactly at XOR distances 1,2,4…"""
        size = 8
        tracer = TraceRecorder(size)

        def program(ctx):
            return (yield from ctx.comm.allgather(b"x" * 100))

        Engine(size, tracer=tracer).run(program)
        counts = tracer.count_matrix
        for dst in range(size):
            for src in range(size):
                if counts[dst, src]:
                    assert bin(dst ^ src).count("1") == 1, (
                        f"unexpected traffic {src}->{dst}"
                    )

    def test_allgather_nonpow2_uses_pow2_ring_distances(self):
        """Bruck's algorithm communicates at ± power-of-two ring distances."""
        size = 6
        tracer = TraceRecorder(size)

        def program(ctx):
            return (yield from ctx.comm.allgather(ctx.rank))

        Engine(size, tracer=tracer).run(program)
        counts = tracer.count_matrix
        for dst in range(size):
            for src in range(size):
                if counts[dst, src]:
                    dist = (src - dst) % size
                    assert dist in {1, 2, 4}, f"unexpected distance {dist}"

    def test_bcast_total_bytes_scale_with_tree(self):
        """A binomial bcast moves exactly (size-1) payload copies."""
        size = 16
        payload = b"y" * 1000
        tracer = TraceRecorder(size)

        def program(ctx):
            return (yield from ctx.comm.bcast(payload if ctx.rank == 0 else None))

        Engine(size, tracer=tracer).run(program)
        assert tracer.total_bytes == pytest.approx(1000 * (size - 1))

    def test_kind_tagging(self):
        size = 4
        tracer = TraceRecorder(size, by_kind=True)

        def program(ctx):
            yield from ctx.comm.allgather(b"z" * 10)
            yield from ctx.comm.barrier()
            return None

        Engine(size, tracer=tracer).run(program)
        assert tracer.kind_bytes("allgather").sum() > 0
        assert "barrier" in tracer.kind_matrices
