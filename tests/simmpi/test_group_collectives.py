"""Equivalence suite for group-aware fast collectives on split communicators.

Extends the world-communicator suite (``test_fast_collectives``): every
program here runs its collectives on sub-communicators produced by
``comm.split`` — uneven group sizes, non-power-of-two groups, non-zero
roots, nested splits, concurrent sibling groups — and must be
indistinguishable from the generator cascade: same results, bit-identical
per-rank virtual clocks, byte-identical trace matrices. Deadlocks that
involve a partially-gathered group collective must be attributed to the
stuck group and its missing members.
"""

import numpy as np
import pytest

from repro.simmpi import DeadlockError, Engine
from repro.simmpi.collectives import max_op, sum_op

from test_fast_collectives import (  # same-directory module (pytest path mode)
    assert_equivalent,
    two_level_network,
)

SIZES = [4, 6, 8, 12, 16]


@pytest.mark.parametrize("size", SIZES)
class TestSplitCollectiveEquivalence:
    def test_split_allreduce(self, size):
        """The paper's multi-group shape: per-iteration allreduce per group."""

        def program(ctx):
            ctx.advance(0.001 * ctx.rank)
            row = yield from ctx.comm.split(color=ctx.rank // 3)
            total = 0.0
            for _ in range(3):
                total = yield from row.allreduce(float(ctx.rank) + total)
            return (row.comm_id, row.rank, total, ctx.now)

        slow, fast = assert_equivalent(program, size)
        assert fast["fast_runs"] > 1  # the split allgather plus group ops

    def test_split_bcast_and_reduce_nonzero_root(self, size):
        def program(ctx):
            half = yield from ctx.comm.split(color=ctx.rank % 2, key=-ctx.rank)
            root = half.size - 1
            obj = np.arange(4) * ctx.rank if half.rank == root else None
            got = yield from half.bcast(obj, root=root)
            top = yield from half.reduce(float(got.sum()), max_op, root=root)
            return (got.tolist(), top, ctx.now)

        assert_equivalent(program, size)

    def test_split_allgather_alltoall_barrier(self, size):
        def program(ctx):
            ctx.advance(0.002 * ((ctx.rank * 3) % 4))
            grp = yield from ctx.comm.split(color=ctx.rank % 3)
            ids = yield from grp.allgather((ctx.rank, grp.rank))
            vals = [b"y" * (d + grp.rank + 1) for d in range(grp.size)]
            swapped = yield from grp.alltoall(vals)
            yield from grp.barrier()
            return (ids, swapped, ctx.now)

        assert_equivalent(program, size)

    def test_nested_split(self, size):
        """Splits of splits: grand-child groups fast-path too."""

        def program(ctx):
            half = yield from ctx.comm.split(color=ctx.rank % 2)
            quarter = yield from half.split(color=half.rank % 2)
            a = yield from half.allreduce(ctx.rank + 1)
            b = yield from quarter.allreduce(ctx.rank + 1, max_op)
            return (a, b, ctx.now)

        assert_equivalent(program, size)

    def test_sibling_groups_price_over_their_own_slice(self, size):
        """Group messages must use the members' *world* ranks against the
        two-level network — clocks diverge if the slice is mislabeled."""

        def program(ctx):
            # Colors stripe across nodes so sibling groups mix intra- and
            # inter-node links differently.
            grp = yield from ctx.comm.split(color=ctx.rank % 2)
            value = np.full(64, float(ctx.rank))
            total = yield from grp.allreduce(value, sum_op)
            return (float(total[0]), ctx.now)

        assert_equivalent(program, size)


class TestPartialMembership:
    def test_none_color_ranks_skip_the_group(self):
        size = 6

        def program(ctx):
            color = None if ctx.rank >= 4 else 0
            sub = yield from ctx.comm.split(color=color)
            if sub is None:
                return ("outside", ctx.now)
            total = yield from sub.allreduce(ctx.rank)
            return (total, sub.size, ctx.now)

        slow, fast = assert_equivalent(program, size)
        results = fast["results"]
        assert results[5][0] == "outside"
        assert results[0][0] == 0 + 1 + 2 + 3 and results[0][1] == 4

    def test_single_member_group(self):
        size = 3

        def program(ctx):
            solo = yield from ctx.comm.split(color=ctx.rank)
            got = yield from solo.allreduce(ctx.rank * 10)
            yield from solo.barrier()
            return got

        slow, fast = assert_equivalent(program, size, expect_fast=False)
        assert fast["results"] == [0, 10, 20]


class TestDeadlockAttribution:
    def test_stuck_group_member_is_named(self):
        """Rank 3 never joins its group's allreduce: the deadlock must name
        the stuck group members' group ranks and the missing world rank."""
        size = 4

        def program(ctx):
            grp = yield from ctx.comm.split(color=ctx.rank // 2)
            if ctx.rank == 3:
                # Abandon the group: wait on a message that never comes.
                yield from ctx.comm.recv(source=0, tag=77)
                return None
            return (yield from grp.allreduce(ctx.rank))

        engine = Engine(size, network=two_level_network())
        with pytest.raises(DeadlockError) as err:
            engine.run(program)
        blocked = err.value.blocked
        # Rank 2 is parked on the half-gathered collective of group (2, 3).
        assert 2 in blocked
        assert "gathered 1/2" in blocked[2]
        assert "missing world rank(s) [3]" in blocked[2]
        assert "group rank 0/2" in blocked[2]

    def test_cascade_deadlocks_still_describe_requests(self):
        """Attribution only decorates fast-path collectives; plain p2p
        deadlocks keep the request description."""
        size = 2

        def program(ctx):
            yield from ctx.comm.recv(source=1 - ctx.rank, tag=5)

        engine = Engine(size)
        with pytest.raises(DeadlockError) as err:
            engine.run(program)
        assert all("recv from" in why for why in err.value.blocked.values())


class TestGroupBookkeeping:
    def test_same_split_key_reuses_comm_id_and_group(self):
        size = 4

        def program(ctx):
            a = yield from ctx.comm.split(color=ctx.rank // 2)
            b = yield from ctx.comm.split(color=ctx.rank // 2)
            assert a.comm_id != b.comm_id  # different split sequence
            return (a.comm_id, b.comm_id, a.group, b.group)

        engine = Engine(size)
        results = engine.run(program)
        # All members of one color agree on ids and groups.
        assert results[0] == results[1]
        assert results[2] == results[3]
        for cid, group in ((results[0][0], results[0][2]),
                           (results[2][1], results[2][3])):
            assert engine.group_of(cid) == group

    def test_register_group_rejects_remapping(self):
        from repro.simmpi.errors import MatchingError

        engine = Engine(4)
        engine.register_group(9, (0, 2))
        engine.register_group(9, (0, 2))  # idempotent
        with pytest.raises(MatchingError):
            engine.register_group(9, (1, 3))

    def test_engine_reuse_with_different_split_topology(self):
        """A reused engine must not leak run A's split registrations into
        run B: the new topology gets fresh ids and full fast-path access."""
        size = 4

        def by_parity(ctx):
            grp = yield from ctx.comm.split(color=ctx.rank % 2)
            return (grp.group, (yield from grp.allreduce(ctx.rank)))

        def by_half(ctx):
            grp = yield from ctx.comm.split(color=ctx.rank // 2)
            return (grp.group, (yield from grp.allreduce(ctx.rank)))

        engine = Engine(size)
        assert engine.run(by_parity)[0] == ((0, 2), 2)
        before = engine.fast_collectives_run
        assert engine.run(by_half)[0] == ((0, 1), 1)
        assert engine.fast_collectives_run > before, (
            "second run's split collectives fell off the fast path"
        )

    def test_unregistered_comm_stays_on_cascade(self):
        """A communicator the engine does not know must never fast-path."""
        from repro.simmpi.comm import Communicator

        size = 4

        def program(ctx):
            sub = Communicator(ctx, 57, (0, 1, 2, 3))  # never registered
            if ctx.rank == 99:
                yield None
            return (yield from sub.allreduce(1))

        engine = Engine(size)
        assert engine.run(program) == [4] * 4
        assert engine.fast_collectives_run == 0
