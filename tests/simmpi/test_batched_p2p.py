"""Equivalence suite for batched point-to-point pricing.

``use_batched_p2p=True`` (the default) defers each send's arrival-time
computation and prices whole waves of sends in one vectorized
``NetworkModel.transfer_times`` call; ``False`` pins the per-message scalar
``transfer_time`` reference. The two must be indistinguishable: identical
results, bit-identical per-rank virtual clocks, byte-identical traces —
under fast collectives, under the cascade, and on stencil halo workloads.
"""

import numpy as np
import pytest

from repro.apps.stencil import (
    ProcessGrid,
    halo_exchange,
    halo_wave_init,
    synthetic_halo_exchange,
)
from repro.simmpi import Engine, TraceRecorder

from test_fast_collectives import two_level_network  # same-directory module


def run_both_pricings(program, size, *, fast_collectives=True):
    """Run ``program`` with scalar and batched p2p pricing; return records."""
    records = []
    for batched in (False, True):
        tracer = TraceRecorder(size, by_kind=True)
        engine = Engine(
            size,
            network=two_level_network(),
            tracer=tracer,
            use_fast_collectives=fast_collectives,
            use_batched_p2p=batched,
        )
        results = engine.run(program)
        records.append(
            {"results": results, "clocks": engine.rank_times(), "tracer": tracer}
        )
    return records


def assert_pricing_equivalent(program, size, **kwargs):
    scalar, batched = run_both_pricings(program, size, **kwargs)
    assert scalar["results"] == batched["results"]
    assert scalar["clocks"] == batched["clocks"], "virtual clocks diverged"
    np.testing.assert_array_equal(
        scalar["tracer"].bytes_matrix, batched["tracer"].bytes_matrix
    )
    np.testing.assert_array_equal(
        scalar["tracer"].count_matrix, batched["tracer"].count_matrix
    )
    return scalar, batched


class TestStencilWorkloads:
    @pytest.mark.parametrize("px,py", [(2, 2), (4, 2), (4, 4)])
    def test_synthetic_halo_exchange(self, px, py):
        grid = ProcessGrid(px=px, py=py, nx=8 * px, ny=8 * py)

        def program(ctx):
            for it in range(4):
                ctx.advance(1e-4 * (1 + (ctx.rank + it) % 3))
                yield from synthetic_halo_exchange(ctx.comm, grid, nfields=3)
            return ctx.now

        assert_pricing_equivalent(program, grid.nranks)

    def test_real_payload_halo_exchange(self):
        grid = ProcessGrid(px=3, py=2, nx=12, ny=8)

        def program(ctx):
            field = np.full(
                (grid.tile_ny + 2, grid.tile_nx + 2), float(ctx.rank)
            )
            for _ in range(3):
                yield from halo_exchange(ctx.comm, grid, [field])
                field[1:-1, 1:-1] += 1.0
            return field.sum()

        assert_pricing_equivalent(program, grid.nranks)

    def test_stencil_with_per_iteration_split_allreduce(self):
        """The paper's app shape: halo waves plus a group allreduce."""
        grid = ProcessGrid(px=4, py=2, nx=16, ny=8)

        def program(ctx):
            row_comm = yield from ctx.comm.split(color=ctx.rank // grid.px)
            total = 0.0
            for _ in range(3):
                yield from synthetic_halo_exchange(ctx.comm, grid)
                total = yield from row_comm.allreduce(total + ctx.rank)
            return (total, ctx.now)

        for fast in (False, True):
            assert_pricing_equivalent(
                program, grid.nranks, fast_collectives=fast
            )


class TestPricingSemantics:
    def test_wildcard_receives_and_sendrecv(self):
        size = 5

        def program(ctx):
            dst = (ctx.rank + 1) % size
            src = (ctx.rank - 1) % size
            got = yield from ctx.comm.sendrecv(
                ctx.rank * 1.5, dest=dst, source=src, sendtag=2
            )
            yield from ctx.comm.isend(b"x" * 100, dest=dst, tag=3)
            extra = yield from ctx.comm.recv()  # ANY_SOURCE / ANY_TAG
            return (got, extra, ctx.now)

        assert_pricing_equivalent(program, size)

    def test_self_send_prices_to_zero_transfer(self):
        def program(ctx):
            yield from ctx.comm.isend(b"local", dest=ctx.rank, tag=1)
            ctx.advance(0.5)
            got = yield from ctx.comm.recv(source=ctx.rank, tag=1)
            return (got, ctx.now)

        scalar, batched = assert_pricing_equivalent(program, 2)
        # Self-transfer is free: the wait must not move the clock past 0.5.
        assert batched["results"][0] == (b"local", 0.5)

    def test_unawaited_sends_leave_no_stale_state(self):
        """Sends whose arrival time is never consumed must not leak into a
        later run's pricing batch."""
        engine = Engine(2, network=two_level_network())

        def fire_and_forget(ctx):
            yield from ctx.comm.isend(None, dest=1 - ctx.rank, tag=9, nbytes=64)
            return ctx.now

        engine.run(fire_and_forget)
        assert engine.run(fire_and_forget) == [0.0, 0.0]

    def test_cascade_collectives_price_identically(self):
        """With fast collectives off, every collective is p2p traffic — the
        batched pricing must reproduce the cascade clocks exactly."""
        size = 6

        def program(ctx):
            ctx.advance(0.001 * ctx.rank)
            total = yield from ctx.comm.allreduce(ctx.rank + 1)
            blocks = yield from ctx.comm.allgather(total * ctx.rank)
            return (total, blocks, ctx.now)

        assert_pricing_equivalent(program, size, fast_collectives=False)


class TestPersistentWaves:
    """The persistent-request wave path is the same workload as the
    per-message halo program: identical clocks, traces and results under
    both pricing modes."""

    @pytest.mark.parametrize("px,py", [(2, 2), (4, 2), (4, 4)])
    def test_wave_halo_matches_per_message_halo(self, px, py):
        grid = ProcessGrid(px=px, py=py, nx=8 * px, ny=8 * py)

        def permsg(ctx):
            for it in range(4):
                ctx.advance(1e-4 * (1 + (ctx.rank + it) % 3))
                yield from synthetic_halo_exchange(ctx.comm, grid, nfields=3)
            return ctx.now

        def wave(ctx):
            comm = ctx.comm
            requests, recvs = halo_wave_init(comm, grid, nfields=3)
            start = comm.start_all_op(requests)
            drain = comm.waitall_op(recvs)
            for it in range(4):
                ctx.advance(1e-4 * (1 + (ctx.rank + it) % 3))
                yield start
                yield drain
            return ctx.now

        reference = run_both_pricings(permsg, grid.nranks)[0]
        for batched in (0, 1):
            waved = run_both_pricings(wave, grid.nranks)[batched]
            assert reference["results"] == waved["results"]
            assert reference["clocks"] == waved["clocks"]
            np.testing.assert_array_equal(
                reference["tracer"].bytes_matrix, waved["tracer"].bytes_matrix
            )
            np.testing.assert_array_equal(
                reference["tracer"].count_matrix, waved["tracer"].count_matrix
            )

    def test_wave_with_split_allreduce(self):
        """Waves interleave with group collectives exactly like the
        per-message program (the paper's app shape)."""
        grid = ProcessGrid(px=4, py=2, nx=16, ny=8)

        def permsg(ctx):
            row_comm = yield from ctx.comm.split(color=ctx.rank // grid.px)
            total = 0.0
            for _ in range(3):
                yield from synthetic_halo_exchange(ctx.comm, grid)
                total = yield from row_comm.allreduce(total + ctx.rank)
            return (total, ctx.now)

        def wave(ctx):
            comm = ctx.comm
            row_comm = yield from comm.split(color=ctx.rank // grid.px)
            requests, recvs = halo_wave_init(comm, grid)
            start = comm.start_all_op(requests)
            drain = comm.waitall_op(recvs)
            total = 0.0
            for _ in range(3):
                yield start
                yield drain
                total = yield from row_comm.allreduce(total + ctx.rank)
            return (total, ctx.now)

        for fast in (False, True):
            ref = run_both_pricings(permsg, grid.nranks, fast_collectives=fast)
            waved = run_both_pricings(wave, grid.nranks, fast_collectives=fast)
            for mode in (0, 1):
                assert ref[mode]["results"] == waved[mode]["results"]
                assert ref[mode]["clocks"] == waved[mode]["clocks"]
                np.testing.assert_array_equal(
                    ref[mode]["tracer"].bytes_matrix,
                    waved[mode]["tracer"].bytes_matrix,
                )
