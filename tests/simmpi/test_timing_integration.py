"""Virtual-time integration tests: placement × network × application.

These pin down the property that makes topology-aware placement matter in
the first place (§II-C2): with block placement, the stencil's dominant
east-west exchange rides the fast intra-node link, so the same application
finishes earlier in virtual time than under a round-robin placement that
scatters neighbors across nodes.
"""

import pytest

from repro.apps import TsunamiConfig, TsunamiSimulation
from repro.machine import BlockPlacement, Machine, RoundRobinPlacement
from repro.simmpi import Engine, LinkParameters, NetworkModel
from repro.simmpi.comm import Communicator


def run_with_placement(placement_cls):
    machine = Machine(
        4,
        4,
        placement=placement_cls(4, 4),
        intra_link=LinkParameters(latency_s=1e-7, bandwidth_Bps=1e10),
        inter_link=LinkParameters(latency_s=5e-6, bandwidth_Bps=1e9),
    )
    # Tall tiles (the paper's aspect): east-west exchanges dominate, and
    # block placement keeps exactly those on the fast intra-node link.
    cfg = TsunamiConfig(px=4, py=4, nx=64, ny=1536, iterations=10,
                        synthetic=True, allreduce_every=0)
    sim = TsunamiSimulation(cfg)
    engine = Engine(16, network=machine.network)
    engine.run(sim.make_program())
    return engine.max_time


class TestPlacementTiming:
    def test_block_placement_is_faster(self):
        """Topology-aware (block) placement beats round-robin because
        east-west neighbors share nodes."""
        block_time = run_with_placement(BlockPlacement)
        rr_time = run_with_placement(RoundRobinPlacement)
        assert block_time < rr_time

    def test_zero_latency_runs_in_zero_time(self):
        cfg = TsunamiConfig(px=2, py=2, nx=8, ny=8, iterations=3,
                            synthetic=True, allreduce_every=0)
        sim = TsunamiSimulation(cfg)
        engine = Engine(4)  # default zero-latency network
        engine.run(sim.make_program())
        assert engine.max_time == 0.0

    def test_message_size_drives_transfer_time(self):
        slow = NetworkModel(
            intra_node=LinkParameters(0.0, 1e6),
            inter_node=LinkParameters(0.0, 1e6),
        )

        def program(ctx):
            comm = ctx.comm
            if ctx.rank == 0:
                yield from comm.send(None, dest=1, tag=0, nbytes=10**6)
            else:
                yield from comm.recv(source=0, tag=0)
            return ctx.now

        engine = Engine(2, network=slow)
        times = engine.run(program)
        assert times[1] == pytest.approx(1.0)


class TestCommFactory:
    def test_engine_accepts_custom_communicator_factory(self):
        """Engine.run(comm_factory=...) lets callers swap the world comm
        (how custom protocol layers can wrap communication wholesale)."""
        created = []

        class TaggingComm(Communicator):
            pass

        def factory(ctx):
            comm = TaggingComm(ctx, 0, tuple(range(ctx.nranks)))
            created.append(comm)
            return comm

        def program(ctx):
            assert isinstance(ctx.comm, TaggingComm)
            total = yield from ctx.comm.allreduce(1)
            return total

        engine = Engine(3)
        assert engine.run(program, comm_factory=factory) == [3, 3, 3]
        assert len(created) == 3

    def test_request_test_api(self):
        def program(ctx):
            comm = ctx.comm
            if ctx.rank == 0:
                req = yield from comm.isend("x", dest=1, tag=0)
                assert comm.test(req)  # buffered sends complete at post
                return None
            req = yield from comm.irecv(source=0, tag=0)
            # The message may or may not have arrived yet; after wait it has.
            payload = yield from comm.wait(req)
            assert comm.test(req)
            return payload

        engine = Engine(2)
        assert engine.run(program)[1] == "x"
