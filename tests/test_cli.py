"""CLI tests: every subcommand produces its exhibit."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["figZ"])


class TestCommands:
    def test_table1(self, capsys):
        assert main(["table1"]) == 0
        out = capsys.readouterr().out
        assert "TSUBAME2" in out and "1408" in out

    def test_table2(self, capsys):
        assert main(["table2", "--iterations", "10"]) == 0
        out = capsys.readouterr().out
        assert "hierarchical-64-4" in out
        assert "['hierarchical-64-4']" in out

    def test_fig3(self, capsys):
        assert main(["fig3", "--iterations", "10", "--sizes", "8", "32"]) == 0
        out = capsys.readouterr().out
        assert "sweet spot: 32" in out

    def test_fig4a(self, capsys):
        assert main(["fig4a", "--sizes", "4", "8"]) == 0
        assert "P[cat]" in capsys.readouterr().out

    def test_fig4bc(self, capsys):
        assert main(["fig4bc", "--iterations", "10", "--sizes", "32"]) == 0
        assert "restart%" in capsys.readouterr().out

    def test_fig5_small(self, capsys):
        assert main(
            ["fig5", "--nodes", "4", "--app-per-node", "4",
             "--iterations", "6", "--checkpoint-every", "3"]
        ) == 0
        out = capsys.readouterr().out
        assert "Fig. 5a" in out and "Fig. 5b" in out

    def test_radar(self, capsys):
        assert main(["radar", "--iterations", "10"]) == 0
        assert "inside baseline" in capsys.readouterr().out

    def test_montecarlo(self, capsys):
        assert main(
            ["montecarlo", "--iterations", "10", "--samples", "400"]
        ) == 0
        out = capsys.readouterr().out
        assert "Monte-Carlo validation (400 failures per strategy)" in out
        assert "hierarchical-64-4" in out
        assert "restart (sampled)" in out

    def test_campaign(self, capsys):
        assert main(
            ["campaign", "--iterations", "10", "--days", "7",
             "--node-mtbf-years", "0.1"]
        ) == 0
        out = capsys.readouterr().out
        assert "failure campaign" in out
        assert "hierarchical-64-4" in out

    def test_serve_self_test(self, capsys):
        assert main(["serve", "--self-test"]) == 0
        out = capsys.readouterr().out
        assert "self-test ok" in out
        assert "equivalence checks" in out

    def test_fuzz_campaign_writes_artifacts(self, capsys, tmp_path):
        out_dir = tmp_path / "fuzz-out"
        assert main(
            ["fuzz", "--seed", "42", "--budget", "4", "--shrink", "1",
             "--out-dir", str(out_dir)]
        ) == 0
        out = capsys.readouterr().out
        assert "fuzz campaign: 4 scenarios (seed 42)" in out
        assert "classifications:" in out
        assert "disagreement rate" in out
        assert (out_dir / "BENCH_fuzzer.json").exists()

    def test_fuzz_actor_selection(self, capsys):
        assert main(
            ["fuzz", "--seed", "1", "--budget", "2", "--shrink", "0",
             "--actors", "soft", "burst"]
        ) == 0
        out = capsys.readouterr().out
        assert "coverage: soft=" in out

    def test_fuzz_schedule_sweep_writes_artifacts(self, capsys, tmp_path):
        out_dir = tmp_path / "ilv-out"
        assert main(
            ["fuzz", "--schedules", "16", "--workload", "race-demo",
             "--out-dir", str(out_dir)]
        ) == 0
        out = capsys.readouterr().out
        assert "interleaving sweep [race-demo]: 16 schedules" in out
        assert "divergences:" in out
        assert (out_dir / "BENCH_interleaving.json").exists()
        repros = list(out_dir.glob("schedule_repro_*.json"))
        assert repros, "race-demo sweep found no schedule repro"
        assert main(["fuzz", "--replay", str(repros[0])]) == 0

    def test_sim_heat_sharded_verifies(self, capsys):
        assert main(
            ["sim", "--workload", "heat", "--px", "2", "--py", "2",
             "--iterations", "4", "--shards", "2", "--verify"]
        ) == 0
        out = capsys.readouterr().out
        assert "workload: heat (4 ranks)" in out
        assert "shards: 2 on the coordinator" in out
        assert "verified: traces byte-identical, clocks bit-identical" in out

    def test_sim_fig5_worker_processes(self, capsys):
        assert main(
            ["sim", "--workload", "fig5", "--nodes", "2",
             "--app-per-node", "2", "--iterations", "3",
             "--checkpoint-every", "2", "--shards", "2", "--workers", "2",
             "--verify"]
        ) == 0
        out = capsys.readouterr().out
        assert "2 worker process(es)" in out
        assert "verified" in out

    def test_sim_spectral_sparse_recorder(self, capsys):
        assert main(
            ["sim", "--workload", "spectral", "--nranks", "4",
             "--iterations", "2", "--shards", "2", "--sparse", "--verify"]
        ) == 0
        out = capsys.readouterr().out
        assert "fast collective(s)" in out
        assert "traced:" in out
        assert "verified" in out

    def test_fuzz_replay_roundtrip(self, capsys, tmp_path):
        from repro.failures import FailureScenario
        from repro.fuzz import FuzzScenario, FuzzShape, save_repro

        path = save_repro(
            tmp_path / "repro.json",
            FuzzScenario(
                shape=FuzzShape(),
                schedule=FailureScenario.node_failure(6, 1),
            ),
            "agree",
        )
        assert main(["fuzz", "--replay", str(path)]) == 0
        assert "classification: agree" in capsys.readouterr().out
