"""Service-layer tests: cache budget, batching, streaming, invariance.

Small generic shapes keep table builds cheap; every equivalence assert
is exact (``==``) because the service's contract is bit-equality with
in-process :func:`repro.core.query.run_query`.
"""

import asyncio
import threading

import pytest

from repro.core.query import (
    ClusteringSpec,
    MachineSpec,
    ReliabilityQuery,
    run_query,
)
from repro.service import (
    Dispatcher,
    QueryEngine,
    ServiceClient,
    ServiceError,
    ServiceThread,
    TableCache,
)

MACHINE = MachineSpec(nnodes=8, procs_per_node=2)


def query(*, cluster_size=4, strategy="naive", seed=0, metric="montecarlo", **kw):
    return ReliabilityQuery(
        metric=metric,
        machine=MACHINE,
        clustering=ClusteringSpec(strategy=strategy, cluster_size=cluster_size),
        n_samples=kw.pop("n_samples", 100),
        seed=seed,
        **kw,
    )


class TestTableCache:
    def test_hit_and_miss_accounting(self):
        cache = TableCache()
        cache.get(query(seed=0))
        cache.get(query(seed=1))  # same tables, different seed
        cache.get(query(cluster_size=2))
        stats = cache.stats()
        assert stats == {
            "entries": 2,
            "bytes": stats["bytes"],
            "max_bytes": cache.max_bytes,
            "hits": 1,
            "misses": 2,
            "evictions": 0,
        }
        assert stats["bytes"] > 0

    def test_returns_same_tables_object_on_hit(self):
        cache = TableCache()
        assert cache.get(query()) is cache.get(query(seed=5))

    def test_evicts_lru_under_byte_budget(self):
        cache = TableCache(max_bytes=1)  # pathological: nothing fits
        cache.get(query(cluster_size=2))
        cache.get(query(cluster_size=4))
        stats = cache.stats()
        # The most recent entry always survives; the older one is evicted.
        assert len(cache) == 1
        assert stats["evictions"] == 1
        assert query(cluster_size=4) in cache
        assert query(cluster_size=2) not in cache

    def test_generous_budget_keeps_everything(self):
        cache = TableCache(max_bytes=1 << 30)
        for size in (2, 4, 8):
            cache.get(query(cluster_size=size))
        assert len(cache) == 3
        assert cache.stats()["evictions"] == 0

    def test_eviction_preserves_results(self):
        """Eviction is a cache concern only — answers stay identical."""
        tight = TableCache(max_bytes=1)
        roomy = TableCache(max_bytes=1 << 30)
        queries = [query(cluster_size=s, seed=s) for s in (2, 4, 2, 8, 4)]
        from repro.core.query import run_query_batch

        got_tight, _ = run_query_batch(queries, resolver=tight.get)
        got_roomy, _ = run_query_batch(queries, resolver=roomy.get)
        assert got_tight == got_roomy == [run_query(q) for q in queries]


class TestQueryEngine:
    def test_in_process_matches_run_query(self):
        with QueryEngine() as engine:
            queries = [query(seed=s) for s in range(3)]
            assert engine.execute(queries) == [run_query(q) for q in queries]

    @pytest.mark.parametrize("workers", [1, 4])
    def test_worker_pool_invariance(self, workers):
        """workers=0/1/4 must answer bit-identically."""
        queries = [
            query(seed=1),
            query(cluster_size=2, seed=2),
            query(strategy="size-guided", seed=3),
            query(metric="expected_waste", n_samples=100, n_campaigns=1),
            query(metric="survival"),
        ]
        expected = [run_query(q) for q in queries]
        with QueryEngine(workers=workers) as engine:
            assert engine.execute(queries) == expected
            assert engine.stats()["workers"] == workers

    def test_coalescing_counted(self):
        with QueryEngine() as engine:
            engine.execute([query(seed=s) for s in range(4)])
            stats = engine.stats()
            assert stats["queries"] == 4
            assert stats["scoring_passes"] == 1
            assert stats["coalesced"] == 4

    def test_worker_errors_surface_per_query(self):
        bad = ReliabilityQuery(
            metric="montecarlo",
            machine=MACHINE,
            clustering=ClusteringSpec(strategy="labels", l1=(0, 1)),
            n_samples=10,
        )
        with QueryEngine(workers=1) as engine:
            results = engine.execute(
                [bad, query()], return_exceptions=True
            )
            assert isinstance(results[0], Exception)
            assert results[1] == run_query(query())
            with pytest.raises(Exception, match="16"):
                engine.execute([bad])

    def test_closed_engine_rejects_work(self):
        engine = QueryEngine()
        engine.close()
        with pytest.raises(RuntimeError, match="closed"):
            engine.execute([query()])


class TestDispatcher:
    def test_concurrent_submits_share_a_batch(self):
        """N queries submitted in one loop tick ride one engine batch and
        one coalesced scoring pass."""

        async def scenario():
            engine = QueryEngine()
            dispatcher = Dispatcher(engine)
            await dispatcher.start()
            try:
                results = await asyncio.gather(
                    *(dispatcher.submit(query(seed=s)) for s in range(6))
                )
            finally:
                await dispatcher.stop()
                engine.close()
            return results, dispatcher.stats(), engine.stats()

        results, dstats, estats = asyncio.run(scenario())
        assert results == [run_query(query(seed=s)) for s in range(6)]
        assert dstats["batches"] == 1
        assert dstats["largest_batch"] == 6
        assert estats["scoring_passes"] == 1
        assert estats["coalesced"] == 6

    def test_submit_propagates_query_errors(self):
        async def scenario():
            engine = QueryEngine()
            dispatcher = Dispatcher(engine)
            await dispatcher.start()
            try:
                bad = ReliabilityQuery(
                    metric="montecarlo",
                    machine=MACHINE,
                    clustering=ClusteringSpec(strategy="labels", l1=(0,)),
                    n_samples=10,
                )
                with pytest.raises(ValueError):
                    await dispatcher.submit(bad)
                return await dispatcher.submit(query())
            finally:
                await dispatcher.stop()
                engine.close()

        assert asyncio.run(scenario()) == run_query(query())


@pytest.fixture(scope="module")
def server():
    with ServiceThread() as running:
        yield running


@pytest.fixture(scope="module")
def client(server):
    return ServiceClient(server.host, server.port)


class TestHttpService:
    def test_healthz(self, client):
        assert client.healthz() == {"ok": True}

    def test_query_roundtrip_exact(self, client):
        q = query(seed=7)
        assert client.query(q) == run_query(q)

    def test_campaign_metrics_roundtrip(self, client):
        q = query(metric="expected_waste", n_campaigns=1, seed=4)
        assert client.query(q) == run_query(q)

    def test_unknown_field_is_400(self, client):
        import http.client
        import json

        conn = http.client.HTTPConnection(client.host, client.port)
        try:
            conn.request(
                "POST", "/query", body=json.dumps({"v": 1, "metrik": "x"})
            )
            resp = conn.getresponse()
            payload = json.loads(resp.read())
            assert resp.status == 400
            assert "metrik" in payload["error"]
        finally:
            conn.close()

    def test_bad_query_raises_service_error(self, client):
        q = ReliabilityQuery(
            metric="montecarlo",
            machine=MACHINE,
            clustering=ClusteringSpec(strategy="labels", l1=(0, 1)),
            n_samples=10,
        )
        with pytest.raises(ServiceError) as err:
            client.query(q)
        assert err.value.status == 400

    def test_unknown_route_is_404(self, client):
        with pytest.raises(ServiceError) as err:
            client._get("/nope")
        assert err.value.status == 404

    def test_stats_exposed(self, client):
        client.query(query())
        stats = client.stats()
        assert stats["requests"] > 0
        assert "cache" in stats and "dispatcher" in stats

    def test_stream_non_streamable_metric_is_400(self, client):
        with pytest.raises(ServiceError) as err:
            client.query_streamed(query(metric="montecarlo"))
        assert err.value.status == 400

    def test_streamed_sweep_matches_unstreamed(self, client):
        q = query(
            metric="waste_curve",
            sweep=tuple(600.0 * (i + 1) for i in range(9)),
            n_campaigns=1,
            seed=3,
        )
        partials, final = client.query_streamed(q)
        direct = run_query(q)
        assert final == direct
        assert len(partials) == 3  # 9 points / DEFAULT_STREAM_CHUNK(4) -> 4+4+1
        flattened = [tuple(p) for chunk in partials for p in chunk]
        assert flattened == list(direct.curve)

    def test_streamed_survival_defaults_sweep(self, client):
        q = query(metric="survival")
        partials, final = client.query_streamed(q)
        assert final == run_query(q)
        assert sum(len(c) for c in partials) == len(final.curve)

    def test_concurrent_clients_agree_with_direct(self, server):
        queries = [query(seed=s) for s in range(8)]
        expected = [run_query(q) for q in queries]
        results = [None] * len(queries)

        def worker(i):
            results[i] = ServiceClient(server.host, server.port).query(
                queries[i]
            )

        threads = [
            threading.Thread(target=worker, args=(i,))
            for i in range(len(queries))
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert results == expected


class TestServiceThreadLifecycle:
    def test_start_stop_and_worker_service(self):
        q = query(seed=2)
        with ServiceThread(workers=1) as running:
            client = ServiceClient(running.host, running.port)
            assert client.query(q) == run_query(q)
            assert client.stats()["workers"] == 1
        # Context exit stopped the server: the port no longer answers.
        with pytest.raises(OSError):
            ServiceClient(running.host, running.port, timeout=2).healthz()
