"""Doc-rot gate: paths, modules and commands referenced by the docs exist.

The user-facing documents (`README.md`, `docs/architecture.md`,
`examples/README.md`, `ROADMAP.md`) name files, modules and commands.
Docs rot silently — a rename or deletion leaves the prose pointing at
nothing — so this tier-1 gate extracts every such reference from inline
code spans and fenced code blocks and asserts it still resolves:

* path-like tokens (``src/repro/...``, ``tests/...``, ``*.py``/``*.md``/
  ``*.json``) must exist in the repository;
* dotted ``repro...`` module references must be importable;
* ``python <script>`` / ``python -m <module>`` lines in fenced blocks
  must name real scripts/modules.
"""

import importlib.util
import re
import sys
from pathlib import Path

import pytest

ROOT = Path(__file__).resolve().parent.parent
DOC_FILES = [
    "README.md",
    "docs/architecture.md",
    "examples/README.md",
    "ROADMAP.md",
]

# Tokens that look like repository paths: at least one '/' plus a known
# text/code suffix, or a bare well-known filename.
_PATH_RE = re.compile(
    # Relative paths (segments start with a letter — optionally behind a
    # leading dot for dot-directories like .github/ — so "Fig. 5a/5b" and
    # absolute out-of-repo paths like /root/... do not match) or bare
    # filenames with a doc/code suffix.
    r"(?<![\w/])\.?(?:[A-Za-z][A-Za-z0-9_.-]*/)+[A-Za-z0-9_.-]*[A-Za-z0-9_]"
    r"|(?<![\w/])[A-Za-z0-9_.-]+\.(?:py|md|json)\b"
)
_MODULE_RE = re.compile(r"\brepro(?:\.[a-z_][a-z0-9_]*)+")
_CMD_RE = re.compile(r"python(?:3)?\s+(-m\s+)?([A-Za-z0-9_./-]+)")


def _code_fragments(text: str) -> list[str]:
    """Fenced code blocks plus inline code spans of a markdown document."""
    blocks = re.findall(r"```[a-z]*\n(.*?)```", text, flags=re.DOTALL)
    spans = re.findall(r"`([^`\n]+)`", re.sub(r"```.*?```", "", text, flags=re.DOTALL))
    return blocks + spans


def _doc(path_str: str) -> str:
    path = ROOT / path_str
    if not path.exists():
        pytest.fail(f"documented file {path_str} is missing")
    return path.read_text()


@pytest.mark.parametrize("doc", DOC_FILES)
def test_referenced_paths_exist(doc):
    missing = []
    for fragment in _code_fragments(_doc(doc)):
        for token in _PATH_RE.findall(fragment):
            token = token.rstrip("/.")
            if "*" in token or token.startswith(("http", "__")):
                continue
            if (ROOT / token).exists():
                continue
            if "/" not in token and list(ROOT.rglob(token)):
                # Bare filename mentioned in context (e.g. a directory
                # listing) — enough that it exists somewhere in-tree.
                continue
            missing.append(token)
    assert not missing, f"{doc} references nonexistent paths: {sorted(set(missing))}"


@pytest.mark.parametrize("doc", DOC_FILES)
def test_referenced_modules_import(doc):
    src = str(ROOT / "src")
    if src not in sys.path:
        sys.path.insert(0, src)
    broken = []
    for fragment in _code_fragments(_doc(doc)):
        for module in set(_MODULE_RE.findall(fragment)):
            try:
                spec = importlib.util.find_spec(module)
            except (ImportError, ModuleNotFoundError):
                spec = None
            if spec is None:
                # Accept attribute references like repro.core.paper_scenario:
                # the parent module must import and carry the attribute.
                parent, _, attr = module.rpartition(".")
                try:
                    mod = importlib.import_module(parent)
                except Exception:
                    mod = None
                if mod is None or not hasattr(mod, attr):
                    broken.append(module)
    assert not broken, f"{doc} references unimportable modules: {sorted(set(broken))}"


@pytest.mark.parametrize("doc", DOC_FILES)
def test_documented_commands_resolve(doc):
    src = str(ROOT / "src")
    if src not in sys.path:
        sys.path.insert(0, src)
    broken = []
    blocks = re.findall(r"```[a-z]*\n(.*?)```", _doc(doc), flags=re.DOTALL)
    for block in blocks:
        for dash_m, target in _CMD_RE.findall(block):
            if dash_m:
                module = target.replace("/", ".")
                if importlib.util.find_spec(module) is None:
                    broken.append(f"python -m {target}")
            elif target.endswith(".py") and not (ROOT / target).exists():
                broken.append(f"python {target}")
    assert not broken, f"{doc} documents commands that do not resolve: {broken}"


def test_required_docs_present():
    """The documentation surface itself must not rot away."""
    for doc in DOC_FILES:
        assert (ROOT / doc).exists(), f"{doc} missing"
    # The README must point readers at the recorded benchmark artifacts.
    readme = (ROOT / "README.md").read_text()
    assert "BENCH_montecarlo.json" in readme
    assert "BENCH_simmpi.json" in readme
    assert "docs/architecture.md" in readme
