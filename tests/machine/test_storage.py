"""Storage device/spec tests."""

import numpy as np
import pytest

from repro.machine import StorageDevice, StorageFullError, StorageSpec
from repro.machine.storage import TSUBAME2_PFS, TSUBAME2_SSD


def small_spec(capacity=1000, shared=False):
    return StorageSpec(
        name="test",
        read_bw_Bps=100.0,
        write_bw_Bps=50.0,
        capacity_bytes=capacity,
        latency_s=0.5,
        shared=shared,
    )


class TestStorageSpec:
    def test_write_time(self):
        spec = small_spec()
        assert spec.write_time(100) == pytest.approx(0.5 + 2.0)

    def test_read_time(self):
        spec = small_spec()
        assert spec.read_time(100) == pytest.approx(0.5 + 1.0)

    def test_shared_contention(self):
        spec = small_spec(shared=True)
        assert spec.write_time(100, concurrent=4) == pytest.approx(0.5 + 8.0)

    def test_private_ignores_concurrency(self):
        spec = small_spec(shared=False)
        assert spec.write_time(100, concurrent=4) == spec.write_time(100)

    def test_validation(self):
        with pytest.raises(ValueError):
            StorageSpec("x", read_bw_Bps=0, write_bw_Bps=1, capacity_bytes=1)

    def test_tsubame2_presets(self):
        assert TSUBAME2_SSD.write_bw_Bps == pytest.approx(360e6)
        assert TSUBAME2_PFS.shared and not TSUBAME2_SSD.shared


class TestStorageDevice:
    def test_write_read_roundtrip(self):
        dev = StorageDevice(small_spec())
        payload = np.arange(10)
        t_write = dev.write("ckpt", payload, 80)
        assert t_write > 0
        out, t_read = dev.read("ckpt")
        np.testing.assert_array_equal(out, payload)
        assert t_read > 0

    def test_capacity_tracking(self):
        dev = StorageDevice(small_spec(capacity=100))
        dev.write("a", b"", 60)
        assert dev.free_bytes == 40
        dev.delete("a")
        assert dev.free_bytes == 100

    def test_overwrite_replaces_allocation(self):
        dev = StorageDevice(small_spec(capacity=100))
        dev.write("a", b"", 80)
        dev.write("a", b"", 90)  # fits because the old copy is released
        assert dev.used_bytes == 90

    def test_full_raises(self):
        dev = StorageDevice(small_spec(capacity=100))
        dev.write("a", b"", 60)
        with pytest.raises(StorageFullError):
            dev.write("b", b"", 60)

    def test_read_missing_raises(self):
        dev = StorageDevice(small_spec())
        with pytest.raises(KeyError):
            dev.read("nope")

    def test_delete_missing_is_noop(self):
        dev = StorageDevice(small_spec())
        dev.delete("nope")

    def test_clear(self):
        dev = StorageDevice(small_spec())
        dev.write("a", b"", 10)
        dev.write("b", b"", 20)
        dev.clear()
        assert len(dev) == 0 and dev.used_bytes == 0

    def test_contains_and_size_of(self):
        dev = StorageDevice(small_spec())
        dev.write("k", b"xy", 2)
        assert "k" in dev
        assert dev.size_of("k") == 2
