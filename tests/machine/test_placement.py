"""Placement-policy tests, including the FTI encoder layout of §V."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.machine import (
    BlockPlacement,
    ExplicitPlacement,
    FTIPlacement,
    RoundRobinPlacement,
)


class TestBlockPlacement:
    def test_consecutive_ranks_share_node(self):
        p = BlockPlacement(4, 16)
        assert p.node_of_rank(0) == p.node_of_rank(15) == 0
        assert p.node_of_rank(16) == 1

    def test_ranks_of_node(self):
        p = BlockPlacement(4, 4)
        assert p.ranks_of_node(2) == [8, 9, 10, 11]

    def test_bounds(self):
        p = BlockPlacement(2, 2)
        with pytest.raises(ValueError):
            p.node_of_rank(4)
        with pytest.raises(ValueError):
            p.ranks_of_node(2)

    def test_invalid_shape(self):
        with pytest.raises(ValueError):
            BlockPlacement(0, 4)

    @given(st.integers(1, 16), st.integers(1, 16))
    def test_bijection(self, nnodes, ppn):
        p = BlockPlacement(nnodes, ppn)
        seen = []
        for node in range(nnodes):
            seen.extend(p.ranks_of_node(node))
        assert sorted(seen) == list(range(nnodes * ppn))


class TestRoundRobinPlacement:
    def test_cyclic(self):
        p = RoundRobinPlacement(4, 2)
        assert [p.node_of_rank(r) for r in range(8)] == [0, 1, 2, 3, 0, 1, 2, 3]

    def test_ranks_of_node(self):
        p = RoundRobinPlacement(4, 2)
        assert p.ranks_of_node(1) == [1, 5]

    @given(st.integers(1, 12), st.integers(1, 12))
    def test_bijection(self, nnodes, ppn):
        p = RoundRobinPlacement(nnodes, ppn)
        seen = []
        for node in range(nnodes):
            seen.extend(p.ranks_of_node(node))
        assert sorted(seen) == list(range(nnodes * ppn))


class TestExplicitPlacement:
    def test_table(self):
        p = ExplicitPlacement([1, 0, 1, 0], nnodes=2)
        assert p.node_of_rank(0) == 1
        assert p.ranks_of_node(0) == [1, 3]
        assert p.nranks == 4

    def test_rejects_bad_node(self):
        with pytest.raises(ValueError):
            ExplicitPlacement([0, 5], nnodes=2)


class TestFTIPlacement:
    """The §V layout: 17 procs per node, first is the encoder."""

    def test_paper_encoder_ranks(self):
        p = FTIPlacement(64, 16)
        assert p.nranks == 1088
        assert p.encoder_ranks()[:4] == [0, 17, 34, 51]
        assert p.is_encoder(0) and p.is_encoder(17)
        assert not p.is_encoder(1) and not p.is_encoder(16)

    def test_app_rank_count(self):
        p = FTIPlacement(64, 16)
        assert len(p.app_ranks()) == 1024

    def test_app_index_roundtrip(self):
        p = FTIPlacement(4, 16)
        for app_index in range(4 * 16):
            world = p.world_rank_of_app(app_index)
            assert not p.is_encoder(world)
            assert p.app_index(world) == app_index

    def test_app_index_of_encoder_raises(self):
        p = FTIPlacement(4, 16)
        with pytest.raises(ValueError):
            p.app_index(17)

    def test_layout_record(self):
        p = FTIPlacement(4, 16)
        enc = p.layout(17)
        assert enc.is_encoder and enc.node == 1 and enc.app_index is None
        app = p.layout(18)
        assert not app.is_encoder and app.node == 1 and app.app_index == 16

    def test_node_of_rank(self):
        p = FTIPlacement(4, 16)
        assert p.node_of_rank(16) == 0
        assert p.node_of_rank(17) == 1

    def test_world_rank_of_app_bounds(self):
        p = FTIPlacement(2, 4)
        with pytest.raises(ValueError):
            p.world_rank_of_app(8)

    @given(st.integers(1, 8), st.integers(1, 16))
    def test_partition_into_encoders_and_apps(self, nnodes, app_per_node):
        p = FTIPlacement(nnodes, app_per_node)
        encoders = set(p.encoder_ranks())
        apps = set(p.app_ranks())
        assert encoders.isdisjoint(apps)
        assert encoders | apps == set(range(p.nranks))
        assert len(encoders) == nnodes
