"""Machine-model tests: topology queries, PSU groups, network wiring."""

import pytest

from repro.machine import (
    FTIPlacement,
    Machine,
    RoundRobinPlacement,
    reliability_study_machine,
    tsubame2_fti_machine,
    tsubame2_machine,
)
from repro.machine.tsubame2 import TSUBAME2


class TestMachineTopology:
    def test_default_block_placement(self):
        m = Machine(4, 8)
        assert m.nranks == 32
        assert m.node_of_rank(9) == 1
        assert m.ranks_of_node(3) == list(range(24, 32))

    def test_custom_placement(self):
        m = Machine(4, 2, placement=RoundRobinPlacement(4, 2))
        assert m.node_of_rank(5) == 1

    def test_placement_shape_mismatch_raises(self):
        with pytest.raises(ValueError):
            Machine(8, 2, placement=RoundRobinPlacement(4, 2))

    def test_nodes_of_ranks(self):
        m = Machine(4, 4)
        assert m.nodes_of_ranks([0, 1, 5, 15]) == {0, 1, 3}

    def test_node_info(self):
        m = Machine(4, 2, psu_group_size=2)
        info = m.node_info(3)
        assert info.index == 3
        assert info.ranks == (6, 7)
        assert info.psu_group == 1


class TestPsuGroups:
    def test_grouping(self):
        m = Machine(6, 1, psu_group_size=2)
        assert m.psu_group_of_node(0) == m.psu_group_of_node(1) == 0
        assert m.psu_group_of_node(4) == 2
        assert m.nodes_in_psu_group(1) == [2, 3]
        assert m.n_psu_groups() == 3

    def test_uneven_last_group(self):
        m = Machine(5, 1, psu_group_size=2)
        assert m.n_psu_groups() == 3
        assert m.nodes_in_psu_group(2) == [4]

    def test_invalid_group_size(self):
        with pytest.raises(ValueError):
            Machine(4, 1, psu_group_size=0)

    def test_bounds(self):
        m = Machine(4, 1)
        with pytest.raises(ValueError):
            m.psu_group_of_node(4)
        with pytest.raises(ValueError):
            m.nodes_in_psu_group(99)


class TestStorageWiring:
    def test_one_ssd_per_node(self):
        m = Machine(3, 2)
        assert len(m.node_ssds) == 3
        assert m.ssd_of_rank(0) is m.node_ssds[0]
        assert m.ssd_of_rank(5) is m.node_ssds[2]

    def test_wipe_node(self):
        m = Machine(2, 1)
        m.node_ssds[0].write("ckpt", b"data", 4)
        m.wipe_node(0)
        assert len(m.node_ssds[0]) == 0

    def test_network_uses_placement(self):
        m = Machine(2, 2)
        assert m.network.same_node(0, 1)
        assert not m.network.same_node(1, 2)


class TestTsubame2Presets:
    def test_spec_matches_table1(self):
        assert TSUBAME2.total_nodes == 1408
        assert TSUBAME2.cores_per_node == 12
        assert TSUBAME2.gpus_per_node == 3
        assert TSUBAME2.gpu_total == 4224
        assert TSUBAME2.ssd_write_MBps == 360.0
        assert TSUBAME2.ib_total_Bps == pytest.approx(8e9)
        assert TSUBAME2.pfs_write_GBps == 10.0

    def test_default_evaluation_machine(self):
        m = tsubame2_machine()
        assert m.nnodes == 64 and m.nranks == 1024

    def test_fti_machine_shape(self):
        m = tsubame2_fti_machine()
        assert m.nranks == 1088
        assert isinstance(m.placement, FTIPlacement)
        assert m.placement.encoder_ranks()[:4] == [0, 17, 34, 51]

    def test_reliability_machine_shape(self):
        m = reliability_study_machine()
        assert m.nnodes == 128 and m.procs_per_node == 8 and m.nranks == 1024
