"""Encoding-time model tests against Table II's measured values."""

import pytest

from repro.models import EncodingTimeModel, measure_throughput


class TestLinearLaw:
    def test_table2_values(self):
        """Table II: 204 s @ 32, 51 s @ 8, 102 s @ 16, ~25 s @ 4."""
        model = EncodingTimeModel()
        assert model.seconds_per_gb(32) == pytest.approx(204.0)
        assert model.seconds_per_gb(16) == pytest.approx(102.0)
        assert model.seconds_per_gb(8) == pytest.approx(51.0)
        assert model.seconds_per_gb(4) == pytest.approx(25.5)

    def test_fig3b_order_of_magnitude_claim(self):
        """§III-B: from 4 to 32 processes the time grows ~an order of
        magnitude; 32-cluster encoding of 1 GB takes > 3 minutes."""
        model = EncodingTimeModel()
        assert model.seconds_per_gb(32) / model.seconds_per_gb(4) == pytest.approx(8.0)
        assert model.seconds_per_gb(32) > 180.0
        assert model.seconds_per_gb(4) < 30.0

    def test_20gb_hour_claim(self):
        """§III-B: 'encoding 20GBs of data will take more than one hour
        while it could take less than five minutes' (32 vs 4)."""
        model = EncodingTimeModel()
        assert model.seconds(20.0, 32) > 3600.0
        assert model.seconds(20.0, 4) < 600.0

    def test_scaling_with_volume(self):
        model = EncodingTimeModel()
        assert model.seconds(2.0, 8) == pytest.approx(102.0)

    def test_budget_inversion(self):
        model = EncodingTimeModel()
        # 60 s/GB budget (the baseline): clusters up to 9 qualify.
        assert model.max_cluster_for_budget(60.0) == 9
        assert model.seconds_per_gb(model.max_cluster_for_budget(60.0)) <= 60.0

    def test_intercept(self):
        model = EncodingTimeModel(slope_s_per_gb=2.0, intercept_s_per_gb=10.0)
        assert model.seconds_per_gb(5) == pytest.approx(20.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            EncodingTimeModel(slope_s_per_gb=0.0)
        with pytest.raises(ValueError):
            EncodingTimeModel().seconds_per_gb(0)
        with pytest.raises(ValueError):
            EncodingTimeModel().max_cluster_for_budget(0.0)


class TestMeasuredThroughput:
    def test_measurement_shape(self):
        out = measure_throughput(4, shard_bytes=1 << 14, rng=0)
        assert out["cluster_size"] == 4
        assert out["parity_shards"] == 2
        assert out["seconds"] > 0
        assert out["seconds_per_gb"] > 0

    def test_linear_growth_in_cluster_size(self):
        """The real encoder shows the paper's linear-in-k cost shape."""
        small = measure_throughput(4, shard_bytes=1 << 15, repeats=2, rng=0)
        large = measure_throughput(16, shard_bytes=1 << 15, repeats=2, rng=0)
        ratio = large["seconds_per_gb"] / small["seconds_per_gb"]
        # byte_ops ratio is (16*8)/(4*2) = 16 per shard, /4 shards = 4x per GB.
        assert 2.0 < ratio < 9.0

    def test_minimum_size(self):
        with pytest.raises(ValueError):
            measure_throughput(1)
