"""Baseline requirements, four-dim scores, and logging-overhead model tests."""

import numpy as np
import pytest

from repro.clustering import naive_clustering
from repro.commgraph import paper_tsunami_matrix
from repro.models import (
    PAPER_BASELINE,
    FourDimScore,
    LogMemoryModel,
    logged_bytes,
    logged_fraction,
)


def score(**kw):
    defaults = dict(
        name="test",
        logging_fraction=0.02,
        recovery_fraction=0.06,
        encoding_s_per_gb=25.0,
        prob_catastrophic=1e-6,
    )
    defaults.update(kw)
    return FourDimScore(**defaults)


class TestBaseline:
    def test_paper_thresholds(self):
        assert PAPER_BASELINE.max_logging_fraction == 0.20
        assert PAPER_BASELINE.max_encoding_s_per_gb == 60.0
        assert PAPER_BASELINE.max_prob_catastrophic == 1e-3
        assert PAPER_BASELINE.max_recovery_fraction == 0.20

    def test_hierarchical_like_score_passes(self):
        assert PAPER_BASELINE.satisfied(score())

    def test_each_dimension_can_fail_alone(self):
        assert not PAPER_BASELINE.satisfied(score(logging_fraction=0.5))
        assert not PAPER_BASELINE.satisfied(score(recovery_fraction=0.5))
        assert not PAPER_BASELINE.satisfied(score(encoding_s_per_gb=204.0))
        assert not PAPER_BASELINE.satisfied(score(prob_catastrophic=0.95))

    def test_check_reports_dimensions(self):
        checks = PAPER_BASELINE.check(score(encoding_s_per_gb=204.0))
        assert checks["encoding"] is False
        assert checks["logging"] is True

    def test_normalized_inside_polygon(self):
        norm = PAPER_BASELINE.normalized(score())
        assert all(v <= 1.0 for v in norm.values())

    def test_normalized_reliability_log_scale(self):
        # P = baseline -> ratio 1; P worse (larger) -> ratio > 1.
        at_limit = PAPER_BASELINE.normalized(score(prob_catastrophic=1e-3))
        worse = PAPER_BASELINE.normalized(score(prob_catastrophic=0.5))
        better = PAPER_BASELINE.normalized(score(prob_catastrophic=1e-9))
        assert at_limit["reliability"] == pytest.approx(1.0)
        assert worse["reliability"] > 1.0
        assert better["reliability"] < 1.0

    def test_normalized_reliability_edge_cases(self):
        assert PAPER_BASELINE.normalized(score(prob_catastrophic=0.0))[
            "reliability"
        ] == 0.0
        assert PAPER_BASELINE.normalized(score(prob_catastrophic=1.0))[
            "reliability"
        ] == float("inf")

    def test_score_row_formatting(self):
        row = score(name="hier").as_row()
        assert row[0] == "hier"
        assert row[1] == "2.0%"
        assert "1e-6" in row[4]

    def test_score_validation(self):
        with pytest.raises(ValueError):
            score(logging_fraction=1.5)
        with pytest.raises(ValueError):
            score(encoding_s_per_gb=-1.0)


class TestLoggingOverheadModel:
    def test_fraction_and_bytes_consistent(self):
        g = paper_tsunami_matrix(iterations=2)
        c = naive_clustering(1024, 32)
        frac = logged_fraction(g, c)
        absolute = logged_bytes(g, c)
        assert absolute == pytest.approx(frac * g.total_bytes)

    def test_size_mismatch(self):
        g = paper_tsunami_matrix(iterations=1)
        c = naive_clustering(64, 8)
        with pytest.raises(ValueError):
            logged_fraction(g, c)
        with pytest.raises(ValueError):
            logged_bytes(g, c)

    def test_log_memory_model(self):
        g = paper_tsunami_matrix(iterations=10)
        c = naive_clustering(1024, 32)
        model = LogMemoryModel(memory_per_process_bytes=10 * 2**20)
        peak = model.peak_log_bytes_per_process(
            g, c, trace_duration_s=100.0, window_s=10.0
        )
        assert peak.shape == (1024,)
        assert (peak >= 0).all()
        # Interior cluster-border processes log the most.
        assert peak.max() > 0
        assert model.fits(peak) == bool((peak <= 10 * 2**20).all())

    def test_log_memory_validation(self):
        g = paper_tsunami_matrix(iterations=1)
        c = naive_clustering(1024, 32)
        model = LogMemoryModel(memory_per_process_bytes=1.0)
        with pytest.raises(ValueError):
            model.peak_log_bytes_per_process(
                g, c, trace_duration_s=0.0, window_s=1.0
            )


class TestDalyExtension:
    def test_young_interval_formula(self):
        from repro.models import young_interval

        assert young_interval(100.0, 50_000.0) == pytest.approx(
            np.sqrt(2 * 100 * 50_000)
        )

    def test_daly_close_to_young_for_small_cost(self):
        from repro.models import daly_interval, young_interval

        y = young_interval(10.0, 1e6)
        d = daly_interval(10.0, 1e6)
        assert abs(d - y) / y < 0.05

    def test_waste_minimized_near_optimum(self):
        from repro.models import WasteModel

        wm = WasteModel(checkpoint_cost_s=60.0, restart_cost_s=120.0, mtbf_s=3600.0)
        opt = wm.optimal_interval()
        w_opt = wm.waste(opt)
        assert w_opt <= wm.waste(opt / 4) and w_opt <= wm.waste(opt * 4)

    def test_cheaper_checkpoints_reduce_waste(self):
        from repro.models import WasteModel

        fast = WasteModel(25.0, 60.0, 3600.0).optimal_waste()
        slow = WasteModel(204.0, 60.0, 3600.0).optimal_waste()
        assert fast < slow
