"""Recovery-cost model tests against Table II / Fig. 4c."""

import numpy as np
import pytest

from repro.clustering import (
    distributed_clustering,
    naive_clustering,
    size_guided_clustering,
)
from repro.machine import BlockPlacement
from repro.models import (
    expected_restart_fraction,
    restart_fraction_for_node,
    restart_set_for_nodes,
    worst_case_restart_fraction,
)


@pytest.fixture(scope="module")
def paper_placement():
    return BlockPlacement(64, 16)


class TestRestartSets:
    def test_node_aligned_cluster_restarts_once(self, paper_placement):
        c = naive_clustering(1024, 32)  # cluster = 2 whole nodes
        procs = restart_set_for_nodes(c, paper_placement, [0])
        assert procs.size == 32
        np.testing.assert_array_equal(procs, np.arange(32))

    def test_multi_node_union(self, paper_placement):
        c = naive_clustering(1024, 32)
        procs = restart_set_for_nodes(c, paper_placement, [0, 5])
        assert procs.size == 64  # clusters 0 and 2

    def test_empty_nodes(self, paper_placement):
        c = naive_clustering(1024, 32)
        assert restart_set_for_nodes(c, paper_placement, []).size == 0


class TestTable2RecoveryCosts:
    def test_naive_32_is_3_percent(self, paper_placement):
        c = naive_clustering(1024, 32)
        assert expected_restart_fraction(c, paper_placement) == pytest.approx(
            0.03125
        )  # 32/1024, paper: 3.1 %

    def test_size_guided_8_is_07_percent(self, paper_placement):
        c = size_guided_clustering(1024, 8)
        # One node hosts 2 whole clusters of 8 -> restarts 16 procs = 1.56 %?
        # No: clusters of 8 consecutive ranks sit *within* one node (16 ppn),
        # but a node failure kills both of its clusters: union = 16 procs.
        # The paper counts the expected restart per *failure* including
        # single-process soft errors; for a process failure only its own
        # 8-cluster restarts: 8/1024 = 0.78 % ~ Table II's 0.7 %.
        single_process = c.l1_members(c.l1_of(0)).size / c.n
        assert single_process == pytest.approx(0.0078125)

    def test_distributed_16_is_25_percent(self, paper_placement):
        c = distributed_clustering(paper_placement, 16)
        assert expected_restart_fraction(c, paper_placement) == pytest.approx(
            0.25
        )  # paper: 25 %

    def test_distributed_32_is_50_percent(self, paper_placement):
        """Fig. 4c's headline: 3 % without distribution vs 50 % with."""
        c = distributed_clustering(paper_placement, 32)
        assert expected_restart_fraction(c, paper_placement) == pytest.approx(0.5)
        naive = naive_clustering(1024, 32)
        assert expected_restart_fraction(naive, paper_placement) == pytest.approx(
            0.03125
        )

    def test_hierarchical_64_is_625_percent(self, paper_placement):
        from repro.clustering import PartitionCost, hierarchical_clustering
        from repro.commgraph import node_graph, paper_tsunami_matrix

        g = paper_tsunami_matrix(iterations=5)
        ng = node_graph(g, paper_placement)
        c = hierarchical_clustering(
            ng, paper_placement, cost=PartitionCost(1.0, 8.0)
        )
        assert expected_restart_fraction(c, paper_placement) == pytest.approx(
            0.0625
        )  # 64/1024, paper: 6.25 %


class TestWorstCase:
    def test_uniform_clusters_have_flat_worst_case(self, paper_placement):
        c = naive_clustering(1024, 32)
        assert worst_case_restart_fraction(c, paper_placement) == pytest.approx(
            expected_restart_fraction(c, paper_placement)
        )

    def test_per_node_fraction(self, paper_placement):
        c = naive_clustering(1024, 64)
        assert restart_fraction_for_node(c, paper_placement, 0) == pytest.approx(
            64 / 1024
        )

    def test_size_mismatch_raises(self):
        c = naive_clustering(64, 8)
        with pytest.raises(ValueError):
            expected_restart_fraction(c, BlockPlacement(64, 16))
