"""Campaign-simulator tests: composition of the four dimensions."""

import numpy as np
import pytest

from repro.clustering import (
    PartitionCost,
    distributed_clustering,
    hierarchical_clustering,
    naive_clustering,
    size_guided_clustering,
)
from repro.commgraph import node_graph, paper_tsunami_matrix
from repro.machine import tsubame2_machine
from repro.models import CampaignConfig, CampaignResult, CampaignSimulator


@pytest.fixture(scope="module")
def machine():
    return tsubame2_machine(64, 16)


@pytest.fixture(scope="module")
def hierarchical(machine):
    g = paper_tsunami_matrix(iterations=5)
    ng = node_graph(g, machine.placement)
    return hierarchical_clustering(
        ng, machine.placement, cost=PartitionCost(1.0, 8.0)
    )


def fast_config(**kw):
    defaults = dict(
        horizon_s=7 * 24 * 3600.0,
        checkpoint_interval_s=1800.0,
        node_mtbf_s=0.25 * 365 * 24 * 3600.0,  # busy machine: ~7 failures/wk
    )
    defaults.update(kw)
    return CampaignConfig(**defaults)


class TestConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            CampaignConfig(horizon_s=0)
        with pytest.raises(ValueError):
            CampaignConfig(pfs_flush_every=0)
        with pytest.raises(ValueError):
            CampaignConfig(checkpoint_gb_per_node=-1)

    def test_nonfinite_rejected_naming_field(self):
        with pytest.raises(ValueError, match="horizon_s must be finite"):
            CampaignConfig(horizon_s=float("nan"))
        with pytest.raises(ValueError, match="checkpoint_interval_s must be finite"):
            CampaignConfig(checkpoint_interval_s=float("inf"))
        with pytest.raises(ValueError, match="pfs_flush_every"):
            CampaignConfig(pfs_flush_every=float("nan"))


class TestCosts:
    def test_checkpoint_cost_tracks_l2_size(self, machine, hierarchical):
        sim = CampaignSimulator(machine, fast_config())
        hier_cost = sim.checkpoint_cost_s(hierarchical)
        naive_cost = sim.checkpoint_cost_s(naive_clustering(1024, 32))
        # 4-wide vs 32-wide encoding: ~8x gap plus the shared SSD write.
        assert naive_cost > 4 * hier_cost

    def test_clustering_size_mismatch(self, machine):
        sim = CampaignSimulator(machine, fast_config())
        with pytest.raises(ValueError):
            sim.run(naive_clustering(64, 8))


class TestCampaigns:
    def test_deterministic_under_seed(self, machine, hierarchical):
        sim = CampaignSimulator(machine, fast_config())
        a = sim.run(hierarchical, rng=7)
        b = sim.run(hierarchical, rng=7)
        assert a == b

    def test_result_accounting(self, machine, hierarchical):
        sim = CampaignSimulator(machine, fast_config())
        r = sim.run(hierarchical, rng=3)
        assert r.total_waste_s == pytest.approx(
            r.checkpoint_overhead_s
            + r.rework_s
            + r.restore_s
            + r.catastrophic_penalty_s
        )
        assert 0.0 <= r.waste_fraction <= 1.0
        assert r.efficiency == pytest.approx(1.0 - r.waste_fraction)

    def test_hierarchical_wins_the_campaign(self, machine, hierarchical):
        """The composed end-to-end result: hierarchical wastes the least."""
        sim = CampaignSimulator(machine, fast_config())
        wastes = {}
        for clustering in [
            naive_clustering(1024, 32),
            size_guided_clustering(1024, 8),
            distributed_clustering(machine.placement, 16),
            hierarchical,
        ]:
            wastes[clustering.name] = sim.expected_waste(
                clustering, n_campaigns=3, rng=11
            )
        assert min(wastes, key=wastes.get) == "hierarchical-64-4"

    def test_fragile_clustering_pays_catastrophic_penalties(self, machine):
        """Size-guided-8 dies on ~every node failure: campaigns show
        catastrophic events and their PFS penalty."""
        sim = CampaignSimulator(machine, fast_config())
        r = sim.run(size_guided_clustering(1024, 8), rng=5)
        assert r.n_failures > 0
        assert r.n_catastrophic > 0
        assert r.catastrophic_penalty_s > 0

    def test_reliable_clustering_avoids_catastrophes(self, machine, hierarchical):
        sim = CampaignSimulator(machine, fast_config())
        total_cat = sum(
            sim.run(hierarchical, rng=seed).n_catastrophic
            for seed in range(5)
        )
        assert total_cat == 0

    def test_more_failures_more_waste(self, machine, hierarchical):
        calm = CampaignSimulator(
            machine, fast_config(node_mtbf_s=20 * 365 * 24 * 3600.0)
        ).expected_waste(hierarchical, n_campaigns=3, rng=1)
        busy = CampaignSimulator(
            machine, fast_config(node_mtbf_s=0.05 * 365 * 24 * 3600.0)
        ).expected_waste(hierarchical, n_campaigns=3, rng=1)
        assert busy > calm

    def test_expected_waste_validation(self, machine, hierarchical):
        sim = CampaignSimulator(machine, fast_config())
        with pytest.raises(ValueError):
            sim.expected_waste(hierarchical, n_campaigns=0)


class TestParallelSweep:
    def test_sweep_worker_count_invariant(self, machine, hierarchical):
        """Child streams are keyed by (clustering, campaign) index, so the
        results are identical no matter how the pairs are scheduled."""
        sim = CampaignSimulator(machine, fast_config())
        clusterings = [naive_clustering(1024, 32), hierarchical]
        serial = sim.sweep(clusterings, n_campaigns=3, rng=13, workers=1)
        pooled = sim.sweep(clusterings, n_campaigns=3, rng=13, workers=2)
        assert serial.keys() == pooled.keys()
        for name in serial:
            assert serial[name] == pooled[name]

    def test_sweep_shape_and_types(self, machine, hierarchical):
        sim = CampaignSimulator(machine, fast_config())
        results = sim.sweep([hierarchical], n_campaigns=4, rng=2)
        assert set(results) == {hierarchical.name}
        assert len(results[hierarchical.name]) == 4
        assert all(
            isinstance(r, CampaignResult) for r in results[hierarchical.name]
        )

    def test_expected_waste_parallel_is_deterministic(self, machine, hierarchical):
        sim = CampaignSimulator(machine, fast_config())
        a = sim.expected_waste(hierarchical, n_campaigns=4, rng=9, workers=2)
        b = sim.expected_waste(hierarchical, n_campaigns=4, rng=9, workers=2)
        assert a == b
        assert 0.0 <= a <= 1.0

    def test_serial_path_unchanged_by_workers_param(self, machine, hierarchical):
        """workers=1 must keep the historical shared-generator draws."""
        sim = CampaignSimulator(machine, fast_config())
        import numpy as np
        from repro.util.rng import resolve_rng

        gen = resolve_rng(21)
        reference = float(
            np.mean(
                [sim.run(hierarchical, rng=gen).waste_fraction for _ in range(3)]
            )
        )
        assert sim.expected_waste(
            hierarchical, n_campaigns=3, rng=21, workers=1
        ) == reference

    def test_parallel_statistically_consistent(self, machine, hierarchical):
        """Spawned-stream campaigns estimate the same quantity."""
        sim = CampaignSimulator(machine, fast_config())
        serial = sim.expected_waste(hierarchical, n_campaigns=8, rng=3, workers=1)
        pooled = sim.expected_waste(hierarchical, n_campaigns=8, rng=3, workers=2)
        assert pooled == pytest.approx(serial, rel=0.5, abs=0.02)

    def test_sweep_validation(self, machine, hierarchical):
        sim = CampaignSimulator(machine, fast_config())
        with pytest.raises(ValueError):
            sim.sweep([hierarchical], n_campaigns=0)
        with pytest.raises(ValueError):
            sim.sweep([hierarchical], workers=0)
        with pytest.raises(ValueError, match="unique"):
            sim.sweep([hierarchical, hierarchical], n_campaigns=1)
