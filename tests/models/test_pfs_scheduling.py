"""PFS checkpoint-scheduling model tests (§II-C's quantitative argument)."""

import pytest

from repro.machine import TSUBAME2_PFS, TSUBAME2_SSD
from repro.models import PfsSchedulingModel
from repro.util import GiB


def paper_model(n_clusters=16, gb_per_cluster=4):
    return PfsSchedulingModel(
        n_clusters=n_clusters,
        bytes_per_cluster=gb_per_cluster * GiB,
        pfs=TSUBAME2_PFS,
        ssd=TSUBAME2_SSD,
        nodes_per_cluster=4,
    )


class TestStrategies:
    def test_simultaneous_divides_bandwidth(self):
        m = paper_model()
        simultaneous = m.simultaneous_pfs()
        single = m.pfs.write_time(m.bytes_per_cluster)
        assert simultaneous.makespan_s == pytest.approx(
            m.pfs.write_time(m.bytes_per_cluster, concurrent=16)
        )
        assert simultaneous.makespan_s > 10 * single

    def test_staggered_same_makespan_plus_noise(self):
        """Staggering doesn't finish earlier — it only spreads the pain."""
        m = paper_model()
        staggered = m.staggered_pfs()
        simultaneous = m.simultaneous_pfs()
        assert staggered.makespan_s == pytest.approx(
            simultaneous.makespan_s, rel=0.05
        )
        assert staggered.noise_window_s > 0
        assert not staggered.is_coordinated
        assert simultaneous.is_coordinated

    def test_local_ssd_wins_at_scale(self):
        """At full-machine scale (the paper's premise) the FTI path beats
        both PFS strategies — the reason HydEE is combined with FTI
        instead of scheduling PFS checkpoints."""
        m = paper_model(n_clusters=352)  # 1408 nodes / 4 per cluster
        outcomes = m.compare()
        assert outcomes[0].name == "local-ssd+rs"
        pfs_best = min(o.makespan_s for o in outcomes[1:])
        assert pfs_best / outcomes[0].makespan_s > 2.0

    def test_crossover_small_partitions_fit_the_pfs(self):
        """The I/O bottleneck is a *scale* phenomenon: with few clusters
        the unsaturated PFS is actually faster than SSD + encoding."""
        small = paper_model(n_clusters=4)
        assert small.simultaneous_pfs().makespan_s < small.local_ssd().makespan_s
        big = paper_model(n_clusters=352)
        assert big.simultaneous_pfs().makespan_s > big.local_ssd().makespan_s

    def test_ssd_path_has_no_noise(self):
        assert paper_model().local_ssd().is_coordinated

    def test_encoding_charge_scales_with_l2_size(self):
        m = paper_model()
        small = m.local_ssd(l2_cluster_size=4).makespan_s
        large = m.local_ssd(l2_cluster_size=16).makespan_s
        assert large > small

    def test_validation(self):
        with pytest.raises(ValueError):
            PfsSchedulingModel(
                n_clusters=0, bytes_per_cluster=1,
                pfs=TSUBAME2_PFS, ssd=TSUBAME2_SSD,
            )
        with pytest.raises(ValueError):
            PfsSchedulingModel(
                n_clusters=1, bytes_per_cluster=0,
                pfs=TSUBAME2_PFS, ssd=TSUBAME2_SSD,
            )


class TestScaling:
    def test_pfs_gap_grows_with_cluster_count(self):
        """The more clusters contend, the bigger FTI's advantage — the
        extreme-scale argument of §II-A."""
        gaps = []
        for n in (4, 16, 64):
            m = paper_model(n_clusters=n)
            ssd = m.local_ssd().makespan_s
            pfs = m.simultaneous_pfs().makespan_s
            gaps.append(pfs / ssd)
        assert gaps == sorted(gaps)
