"""Spectral (all-to-all) workload tests — the §V caveat."""

import numpy as np
import pytest

from repro.apps import SpectralConfig, SpectralSimulation
from repro.clustering import consecutive_clustering
from repro.commgraph import graph_from_trace
from repro.simmpi import Engine, TraceRecorder, run_program


def small_cfg(**kw):
    defaults = dict(nranks=4, n=16, iterations=3)
    defaults.update(kw)
    return SpectralConfig(**defaults)


class TestConfig:
    def test_divisibility(self):
        with pytest.raises(ValueError):
            SpectralConfig(nranks=3, n=16)

    def test_block_bytes(self):
        cfg = small_cfg()
        assert cfg.rows_per_rank == 4
        assert cfg.block_bytes == 4 * 4 * 16


class TestNumerics:
    @pytest.mark.parametrize("nranks", [1, 2, 4, 8])
    def test_parallel_matches_serial(self, nranks):
        cfg = small_cfg(nranks=nranks)
        sim = SpectralSimulation(cfg)
        states = run_program(sim.make_program(), nranks)
        parallel = sim.gather_global_field(states)
        serial = sim.run_serial_reference()
        np.testing.assert_array_equal(parallel, serial)

    def test_damping_shrinks_energy(self):
        cfg = small_cfg(iterations=10, damping=0.9)
        sim = SpectralSimulation(cfg)
        out = sim.run_serial_reference()
        initial = sim.run_serial_reference(iterations=0)
        assert np.abs(out).sum() < np.abs(initial).sum()

    def test_hook_called(self):
        cfg = small_cfg()
        calls = []

        def hook(ctx, comm, sim, state, it):
            if comm.rank == 0:
                calls.append(it)
            if False:
                yield

        run_program(SpectralSimulation(cfg).make_program(hook=hook), 4)
        assert calls == [0, 1, 2]


class TestAllToAllDefeatsClustering:
    """The §V caveat: no partition keeps all-to-all traffic intra-cluster."""

    def _traced_graph(self, nranks=8, synthetic=True):
        cfg = small_cfg(nranks=nranks, n=2 * nranks, iterations=2,
                        synthetic=synthetic)
        sim = SpectralSimulation(cfg)
        tracer = TraceRecorder(nranks)
        Engine(nranks, tracer=tracer).run(sim.make_program())
        return graph_from_trace(tracer)

    def test_uniform_matrix(self):
        g = self._traced_graph()
        off = g.matrix[~np.eye(8, dtype=bool)]
        assert (off == off[0]).all()  # perfectly uniform all-to-all

    @pytest.mark.parametrize("k", [2, 4, 8])
    def test_logged_fraction_is_structural(self, k):
        """With equal clusters of size s over a uniform all-to-all, the
        logged fraction is exactly (n-s)/(n-1) for *any* partition —
        clustering cannot reduce it."""
        g = self._traced_graph()
        s = 8 // k
        clustering = consecutive_clustering(8, s)
        assert g.logged_fraction(clustering.l1_labels) == pytest.approx(
            (8 - s) / 7
        )

    def test_even_optimal_partition_logs_half(self):
        """Any 2-way balanced split logs >= 50 % on all-to-all traffic —
        why the paper excludes all-to-all apps from its conclusions."""
        g = self._traced_graph()
        rng = np.random.default_rng(0)
        for _ in range(10):
            labels = rng.permutation(np.repeat([0, 1], 4))
            assert g.logged_fraction(labels) >= 0.5 - 1e-9

    def test_synthetic_matches_real_traffic(self):
        real = self._traced_graph(synthetic=False)
        synth = self._traced_graph(synthetic=True)
        np.testing.assert_array_equal(real.matrix, synth.matrix)


class TestWaveEquivalence:
    def test_synthetic_wave_matches_per_message(self):
        """Both transpose paths share the post-all-then-drain structure,
        so stamps, traces and clocks are identical."""
        from repro.apps.workload import ExecutionMode, with_mode

        cfg = small_cfg(nranks=8, n=16, iterations=3, synthetic=True)
        modes = {False: ExecutionMode.PER_MESSAGE, True: ExecutionMode.KERNELS}
        runs = {}
        for use_waves in (False, True):
            sim = SpectralSimulation(with_mode(cfg, modes[use_waves]))
            tracer = TraceRecorder(8, by_kind=True)
            engine = Engine(8, tracer=tracer)
            engine.run(sim.make_program())
            runs[use_waves] = (engine.rank_times(), tracer)
        assert runs[False][0] == runs[True][0]
        np.testing.assert_array_equal(
            runs[False][1].bytes_matrix, runs[True][1].bytes_matrix
        )
        np.testing.assert_array_equal(
            runs[False][1].count_matrix, runs[True][1].count_matrix
        )
