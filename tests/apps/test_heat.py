"""Heat-diffusion application tests."""

import numpy as np
import pytest

from repro.apps import HeatConfig, HeatSimulation
from repro.simmpi import Engine, TraceRecorder, run_program


def small_cfg(**kw):
    defaults = dict(px=2, py=2, nx=16, ny=16, iterations=10)
    defaults.update(kw)
    return HeatConfig(**defaults)


class TestConfig:
    def test_alpha_stability_bound(self):
        with pytest.raises(ValueError):
            HeatConfig(alpha=0.3)

    def test_indivisible_grid_rejected(self):
        with pytest.raises(ValueError):
            HeatConfig(px=3, nx=16)


class TestSerialReference:
    def test_heat_diffuses_and_decays(self):
        sim = HeatSimulation(small_cfg(iterations=50))
        out = sim.run_serial_reference()
        assert out.max() < small_cfg().hot_spot_temp  # peak decays
        assert out.max() > 0
        assert out[0, 0] > 0  # heat reached the corner (Jacobi spreads 1/iter)

    def test_total_heat_decreases_with_dirichlet_walls(self):
        sim = HeatSimulation(small_cfg(iterations=40))
        initial_total = 100.0 * 6 * 6  # hot square is ~6x6 cells of 100
        out = sim.run_serial_reference()
        assert out.sum() < initial_total

    def test_maximum_principle(self):
        """Jacobi diffusion never exceeds the initial extremes."""
        sim = HeatSimulation(small_cfg(iterations=30))
        out = sim.run_serial_reference()
        assert out.min() >= 0.0 - 1e-12
        assert out.max() <= 100.0 + 1e-12


class TestParallelEquivalence:
    @pytest.mark.parametrize("px,py", [(2, 2), (4, 1), (1, 4), (4, 4)])
    def test_bitwise_equal_to_serial(self, px, py):
        cfg = small_cfg(px=px, py=py, iterations=15)
        sim = HeatSimulation(cfg)
        states = run_program(sim.make_program(), cfg.grid.nranks)
        parallel = sim.gather_global_field(states)
        serial = sim.run_serial_reference()
        np.testing.assert_array_equal(parallel, serial)

    def test_synthetic_trace_matches_real(self):
        real = small_cfg(iterations=5)
        synth = small_cfg(iterations=5, synthetic=True)
        t_real = TraceRecorder(4)
        Engine(4, tracer=t_real).run(HeatSimulation(real).make_program())
        t_synth = TraceRecorder(4)
        Engine(4, tracer=t_synth).run(HeatSimulation(synth).make_program())
        np.testing.assert_array_equal(t_real.bytes_matrix, t_synth.bytes_matrix)

    def test_hook_invoked(self):
        cfg = small_cfg(iterations=3)
        seen = []

        def hook(ctx, comm, sim, state, iteration):
            if comm.rank == 1:
                seen.append(iteration)
            if False:
                yield

        run_program(HeatSimulation(cfg).make_program(hook=hook), 4)
        assert seen == [0, 1, 2]


class TestWaveEquivalence:
    @pytest.mark.parametrize("synthetic", [False, True])
    def test_wave_matches_per_message(self, synthetic):
        from repro.apps.workload import ExecutionMode, with_mode
        from repro.simmpi import Engine, TraceRecorder

        cfg = HeatConfig(
            px=2, py=2, nx=8, ny=8, iterations=6, synthetic=synthetic
        )
        modes = {False: ExecutionMode.PER_MESSAGE, True: ExecutionMode.KERNELS}
        runs = {}
        for use_waves in (False, True):
            sim = HeatSimulation(with_mode(cfg, modes[use_waves]))
            tracer = TraceRecorder(4, by_kind=True)
            engine = Engine(4, tracer=tracer)
            states = engine.run(sim.make_program())
            runs[use_waves] = (states, engine.rank_times(), tracer)
        ref, waved = runs[False], runs[True]
        assert ref[1] == waved[1]
        np.testing.assert_array_equal(
            ref[2].bytes_matrix, waved[2].bytes_matrix
        )
        if not synthetic:
            for ref_state, wave_state in zip(ref[0], waved[0]):
                np.testing.assert_array_equal(ref_state["t"], wave_state["t"])
