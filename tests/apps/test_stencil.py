"""Process-grid and halo-exchange tests."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.apps import ProcessGrid, halo_exchange, synthetic_halo_exchange
from repro.apps.stencil import HaloWave
from repro.simmpi import Engine, TraceRecorder, run_program


class TestProcessGrid:
    def test_shape_properties(self):
        g = ProcessGrid(4, 2, 16, 8)
        assert g.nranks == 8
        assert g.tile_nx == 4 and g.tile_ny == 4

    def test_coords_roundtrip(self):
        g = ProcessGrid(4, 3, 8, 6)
        for rank in range(g.nranks):
            row, col = g.coords_of(rank)
            assert g.rank_at(row, col) == rank

    def test_row_major_numbering(self):
        g = ProcessGrid(4, 2, 8, 8)
        assert g.coords_of(5) == (1, 1)

    def test_neighbors_interior(self):
        g = ProcessGrid(3, 3, 9, 9)
        north, east, south, west = g.neighbors_of(4)  # center
        assert (north, east, south, west) == (1, 5, 7, 3)

    def test_neighbors_corner(self):
        g = ProcessGrid(3, 3, 9, 9)
        north, east, south, west = g.neighbors_of(0)
        assert north is None and west is None
        assert east == 1 and south == 3

    def test_east_west_are_rank_pm1(self):
        """Row-major: EW neighbors differ by 1, NS by px (paper's layout)."""
        g = ProcessGrid(8, 4, 32, 32)
        _, east, south, _ = g.neighbors_of(9)
        assert east == 10 and south == 17

    def test_indivisible_grid_rejected(self):
        with pytest.raises(ValueError):
            ProcessGrid(3, 1, 10, 4)

    def test_tile_slices_cover_domain(self):
        g = ProcessGrid(2, 2, 8, 4)
        covered = np.zeros((4, 8), dtype=int)
        for rank in range(g.nranks):
            ys, xs = g.tile_slices(rank)
            covered[ys, xs] += 1
        np.testing.assert_array_equal(covered, 1)

    def test_bounds(self):
        g = ProcessGrid(2, 2, 4, 4)
        with pytest.raises(ValueError):
            g.coords_of(4)
        with pytest.raises(ValueError):
            g.rank_at(2, 0)

    @given(st.integers(1, 6), st.integers(1, 6))
    def test_neighbor_symmetry(self, px, py):
        g = ProcessGrid(px, py, px * 2, py * 2)
        for rank in range(g.nranks):
            n, e, s, w = g.neighbors_of(rank)
            if e is not None:
                assert g.neighbors_of(e)[3] == rank  # my east's west is me
            if s is not None:
                assert g.neighbors_of(s)[0] == rank  # my south's north is me


class TestHaloExchange:
    def _run_exchange(self, px, py, nfields=1):
        g = ProcessGrid(px, py, px * 3, py * 3)

        def program(ctx):
            comm = ctx.comm
            fields = [
                np.full((g.tile_ny + 2, g.tile_nx + 2), float(ctx.rank * 10 + k))
                for k in range(nfields)
            ]
            yield from halo_exchange(comm, g, fields)
            return fields

        return g, run_program(program, g.nranks)

    def test_ghosts_carry_neighbor_values(self):
        g, results = self._run_exchange(3, 3)
        center = 4
        fields = results[center]
        n, e, s, w = g.neighbors_of(center)
        f = fields[0]
        assert np.all(f[0, 1:-1] == n * 10)
        assert np.all(f[-1, 1:-1] == s * 10)
        assert np.all(f[1:-1, 0] == w * 10)
        assert np.all(f[1:-1, -1] == e * 10)

    def test_physical_ghosts_untouched(self):
        g, results = self._run_exchange(2, 2)
        corner = results[0][0]  # rank 0: north & west are walls
        assert np.all(corner[0, 1:-1] == 0.0 * 10)  # still its own value
        # rank 0's field was filled with 0.0 everywhere, so check rank 3:
        g, results = self._run_exchange(2, 2)
        f3 = results[3][0]
        assert np.all(f3[-1, 1:-1] == 30.0)  # south wall: unchanged own value

    def test_multi_field_packing(self):
        g, results = self._run_exchange(2, 1, nfields=3)
        f = results[0]
        # East ghost of rank 0 comes from rank 1's fields 10, 11, 12.
        for k in range(3):
            assert np.all(f[k][1:-1, -1] == 10.0 + k)

    def test_wrong_field_shape_raises(self):
        g = ProcessGrid(2, 1, 4, 2)

        def program(ctx):
            bad = [np.zeros((3, 3))]
            yield from halo_exchange(ctx.comm, g, bad)
            return None

        with pytest.raises(ValueError):
            run_program(program, 2)


class TestSyntheticHalo:
    def test_same_bytes_as_real_exchange(self):
        """Synthetic and real exchanges produce identical traces."""
        g = ProcessGrid(4, 4, 16, 16)

        def real_program(ctx):
            fields = [np.zeros((g.tile_ny + 2, g.tile_nx + 2)) for _ in range(2)]
            yield from halo_exchange(ctx.comm, g, fields)
            return None

        def synth_program(ctx):
            yield from synthetic_halo_exchange(ctx.comm, g, nfields=2)
            return None

        t_real = TraceRecorder(g.nranks)
        Engine(g.nranks, tracer=t_real).run(real_program)
        t_synth = TraceRecorder(g.nranks)
        Engine(g.nranks, tracer=t_synth).run(synth_program)
        np.testing.assert_array_equal(t_real.bytes_matrix, t_synth.bytes_matrix)

    def test_traffic_only_between_neighbors(self):
        g = ProcessGrid(4, 4, 16, 16)
        tracer = TraceRecorder(g.nranks)

        def program(ctx):
            yield from synthetic_halo_exchange(ctx.comm, g, nfields=1)
            return None

        Engine(g.nranks, tracer=tracer).run(program)
        for dst in range(g.nranks):
            for src in range(g.nranks):
                if tracer.bytes_matrix[dst, src] > 0:
                    assert dst in [
                        x for x in g.neighbors_of(src) if x is not None
                    ]


class TestHaloWave:
    """Compiled persistent halo waves vs the per-message exchange."""

    def _two_level_network(self):
        from repro.simmpi.network import LinkParameters, NetworkModel

        return NetworkModel(
            intra_node=LinkParameters(5e-7, 6.0e9),
            inter_node=LinkParameters(2e-6, 8.0e9),
            locator=lambda rank: rank // 4,
        )

    def test_real_payload_wave_matches_per_message(self):
        """Same fields, traces and clocks as halo_exchange over several
        iterations of an in-place mutating stencil update."""
        g = ProcessGrid(3, 3, 9, 9)

        def permsg_program(ctx):
            fields = [
                np.full((g.tile_ny + 2, g.tile_nx + 2), float(ctx.rank + k))
                for k in range(2)
            ]
            for it in range(4):
                yield from halo_exchange(ctx.comm, g, fields)
                for f in fields:
                    f[1:-1, 1:-1] += 0.5 * it  # mutate in place between waves
            return fields

        def wave_program(ctx):
            fields = [
                np.full((g.tile_ny + 2, g.tile_nx + 2), float(ctx.rank + k))
                for k in range(2)
            ]
            wave = HaloWave(ctx.comm, g, fields)
            for it in range(4):
                yield from wave.exchange()
                for f in fields:
                    f[1:-1, 1:-1] += 0.5 * it
            return fields

        runs = {}
        for name, program in (("permsg", permsg_program), ("wave", wave_program)):
            tracer = TraceRecorder(g.nranks, by_kind=True)
            engine = Engine(g.nranks, network=self._two_level_network(), tracer=tracer)
            results = engine.run(program)
            runs[name] = (results, engine.rank_times(), tracer)
        ref_results, ref_clocks, ref_tracer = runs["permsg"]
        wave_results, wave_clocks, wave_tracer = runs["wave"]
        assert ref_clocks == wave_clocks
        np.testing.assert_array_equal(
            ref_tracer.bytes_matrix, wave_tracer.bytes_matrix
        )
        np.testing.assert_array_equal(
            ref_tracer.count_matrix, wave_tracer.count_matrix
        )
        for ref_fields, wave_fields in zip(ref_results, wave_results):
            for rf, wf in zip(ref_fields, wave_fields):
                np.testing.assert_array_equal(rf, wf)

    def test_synthetic_wave_matches_synthetic_exchange(self):
        g = ProcessGrid(4, 2, 8, 8)

        def permsg_program(ctx):
            for _ in range(3):
                yield from synthetic_halo_exchange(ctx.comm, g, nfields=3)
            return ctx.now

        def wave_program(ctx):
            wave = HaloWave(ctx.comm, g, None, nfields=3)
            for _ in range(3):
                yield wave.start_op
                yield wave.drain_op
            return ctx.now

        runs = {}
        for name, program in (("permsg", permsg_program), ("wave", wave_program)):
            tracer = TraceRecorder(g.nranks)
            engine = Engine(g.nranks, network=self._two_level_network(), tracer=tracer)
            results = engine.run(program)
            runs[name] = (results, tracer.bytes_matrix)
        assert runs["permsg"][0] == runs["wave"][0]
        np.testing.assert_array_equal(runs["permsg"][1], runs["wave"][1])

    def test_single_rank_wave_is_empty_noop(self):
        """A 1x1 grid has four walls: the wave compiles empty and the
        start/drain ops are harmless no-ops."""
        g = ProcessGrid(1, 1, 4, 4)

        def program(ctx):
            wave = HaloWave(ctx.comm, g, None, nfields=1)
            yield wave.start_op
            payloads = yield wave.drain_op
            return payloads

        assert run_program(program, 1) == [[]]

    def test_wrong_field_shape_raises(self):
        g = ProcessGrid(2, 1, 4, 2)

        def program(ctx):
            HaloWave(ctx.comm, g, [np.zeros((3, 3))])
            if False:
                yield

        with pytest.raises(ValueError):
            run_program(program, 2)
