"""Workload protocol, ExecutionMode resolution and the deprecation shim."""

import pickle

import pytest

from repro.apps import (
    HeatConfig,
    SpectralConfig,
    TsunamiConfig,
)
from repro.apps.workload import (
    ExecutionMode,
    FTIWorkload,
    HeatWorkload,
    ProgramsWorkload,
    SpectralWorkload,
    TsunamiWorkload,
    fig5_workload,
    resolve_execution,
    with_mode,
)


class TestExecutionMode:
    def test_flag_properties(self):
        assert not ExecutionMode.PER_MESSAGE.use_waves
        assert not ExecutionMode.PER_MESSAGE.use_kernels
        assert ExecutionMode.WAVES.use_waves
        assert not ExecutionMode.WAVES.use_kernels
        assert ExecutionMode.KERNELS.use_waves
        assert ExecutionMode.KERNELS.use_kernels


class TestResolveExecution:
    def test_nothing_defaults_to_kernels(self):
        mode, waves, kernels = resolve_execution(None, None, None, owner="X")
        assert mode is ExecutionMode.KERNELS
        assert waves and kernels

    def test_mode_alone_derives_booleans(self):
        mode, waves, kernels = resolve_execution(
            ExecutionMode.WAVES, None, None, owner="X"
        )
        assert mode is ExecutionMode.WAVES
        assert waves and not kernels

    def test_legacy_flags_warn_and_derive(self):
        with pytest.warns(DeprecationWarning, match="mode=ExecutionMode.WAVES"):
            mode, waves, kernels = resolve_execution(
                None, True, False, owner="X"
            )
        assert mode is ExecutionMode.WAVES

    def test_legacy_missing_flag_defaults_true(self):
        with pytest.warns(DeprecationWarning):
            mode, _, _ = resolve_execution(None, None, False, owner="X")
        assert mode is ExecutionMode.WAVES  # waves defaulted to True
        with pytest.warns(DeprecationWarning):
            mode, _, _ = resolve_execution(None, True, None, owner="X")
        assert mode is ExecutionMode.KERNELS  # kernels defaulted to True

    def test_agreeing_mode_and_flags_round_trip(self):
        mode, waves, kernels = resolve_execution(
            ExecutionMode.KERNELS, True, True, owner="X"
        )
        assert mode is ExecutionMode.KERNELS

    def test_contradiction_raises(self):
        with pytest.raises(ValueError, match="contradicts"):
            resolve_execution(ExecutionMode.KERNELS, False, False, owner="X")


class TestWithMode:
    def test_clears_stale_booleans(self):
        cfg = HeatConfig(px=2, py=2, mode=ExecutionMode.KERNELS)
        switched = with_mode(cfg, ExecutionMode.PER_MESSAGE)
        assert switched.mode is ExecutionMode.PER_MESSAGE
        assert not switched.use_waves
        assert not switched.use_kernels

    def test_config_flags_accept_legacy_spelling(self):
        with pytest.warns(DeprecationWarning):
            cfg = TsunamiConfig(px=2, py=2, use_waves=False, use_kernels=False)
        assert cfg.mode is ExecutionMode.PER_MESSAGE


class TestWorkloadProtocol:
    @pytest.mark.parametrize(
        "workload",
        [
            HeatWorkload(HeatConfig(px=2, py=2, nx=8, ny=8, iterations=2)),
            TsunamiWorkload(
                TsunamiConfig(px=2, py=2, nx=8, ny=8, iterations=2)
            ),
            SpectralWorkload(SpectralConfig(nranks=4, n=8, iterations=1)),
            fig5_workload(nodes=2, app_per_node=2, iterations=2),
        ],
        ids=["heat", "tsunami", "spectral", "fig5"],
    )
    def test_pickle_round_trip(self, workload):
        workload.build_programs()  # populate the lazy cache
        clone = pickle.loads(pickle.dumps(workload))
        assert clone == workload
        assert clone.nranks == workload.nranks
        assert "_program_cache" not in clone.__dict__  # cache dropped
        assert len(clone.build_programs()) == clone.nranks

    def test_build_program_validates_rank(self):
        workload = HeatWorkload(HeatConfig(px=2, py=2))
        with pytest.raises(ValueError, match="outside world"):
            workload.build_program(4)

    def test_default_atoms_are_single_ranks(self):
        workload = SpectralWorkload(SpectralConfig(nranks=3, n=9))
        assert workload.shard_atoms() == [(0,), (1,), (2,)]

    def test_fti_atoms_are_node_blocks(self):
        workload = fig5_workload(nodes=2, app_per_node=3, iterations=1)
        assert workload.shard_atoms() == [(0, 1, 2, 3), (4, 5, 6, 7)]

    def test_programs_workload_custom_atoms(self):
        def idle(ctx):
            if False:
                yield

        workload = ProgramsWorkload([idle] * 4, atoms=[(0, 1), (2, 3)])
        assert workload.nranks == 4
        assert workload.shard_atoms() == [(0, 1), (2, 3)]
        assert workload.build_program(2) is idle


class TestFig5Workload:
    def test_world_shape(self):
        workload = fig5_workload(nodes=4, app_per_node=4, iterations=2)
        assert workload.nranks == 4 * (4 + 1)
        assert workload.sim_cfg.px * workload.sim_cfg.py == 16
        assert workload.sim_cfg.synthetic

    def test_paper_scale_keeps_32x32_grid(self):
        workload = fig5_workload()  # nodes=64, app_per_node=16 → 1024 app
        assert workload.sim_cfg.px == 32
        assert workload.sim_cfg.py == 32
        assert workload.nranks == 64 * 17

    def test_non_square_counts_factor_most_square(self):
        workload = fig5_workload(nodes=8, app_per_node=4, iterations=1)
        assert workload.sim_cfg.px * workload.sim_cfg.py == 32
        assert workload.sim_cfg.px in (4, 8)  # 4×8, the most-square split
