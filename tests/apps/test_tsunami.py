"""Tsunami-application tests, including parallel-vs-serial bit equality."""

import numpy as np
import pytest

from repro.apps import (
    TsunamiConfig,
    TsunamiSimulation,
    initial_eta,
    paper_tsunami_config,
)
from repro.simmpi import Engine, TraceRecorder, run_program


def small_cfg(**kw):
    defaults = dict(px=2, py=2, nx=16, ny=16, iterations=10, allreduce_every=4)
    defaults.update(kw)
    return TsunamiConfig(**defaults)


class TestConfig:
    def test_timestep_respects_cfl(self):
        cfg = small_cfg()
        cfl_limit = cfg.dx / (cfg.wave_speed * np.sqrt(2.0))
        assert 0 < cfg.timestep < cfl_limit

    def test_explicit_dt(self):
        cfg = small_cfg(dt=0.5)
        assert cfg.timestep == 0.5

    def test_indivisible_grid_rejected(self):
        with pytest.raises(ValueError):
            TsunamiConfig(px=3, py=2, nx=16, ny=16)

    def test_paper_config_shape(self):
        cfg = paper_tsunami_config()
        assert cfg.grid.nranks == 1024
        assert cfg.grid.tile_ny == 24 * cfg.grid.tile_nx  # aspect ratio 24
        assert cfg.synthetic

    def test_initial_condition_peak_location(self):
        cfg = small_cfg()
        ys, xs = np.meshgrid(
            np.arange(cfg.ny, dtype=float), np.arange(cfg.nx, dtype=float),
            indexing="ij",
        )
        eta0 = initial_eta(cfg, ys, xs)
        peak = np.unravel_index(np.argmax(eta0), eta0.shape)
        assert abs(peak[0] - cfg.ny / 2) <= 1 and abs(peak[1] - cfg.nx / 2) <= 1
        assert eta0.max() <= cfg.hump_amplitude + 1e-12


class TestSerialReference:
    def test_energy_stays_bounded(self):
        """Lax–Friedrichs is dissipative: max |eta| must not grow."""
        sim = TsunamiSimulation(small_cfg(iterations=50))
        out = sim.run_serial_reference()
        assert np.abs(out["eta"]).max() <= small_cfg().hump_amplitude * 1.01
        assert np.isfinite(out["eta"]).all()

    def test_wave_propagates(self):
        """After enough steps the wave reaches cells far from the hump."""
        cfg = small_cfg(iterations=30)
        sim = TsunamiSimulation(cfg)
        out = sim.run_serial_reference()
        eta0_corner = 0.0
        assert abs(out["eta"][0, 0]) > eta0_corner  # disturbance arrived

    def test_symmetry(self):
        """Centered hump in a square basin keeps 4-fold symmetry of |eta|."""
        cfg = small_cfg(iterations=20)
        sim = TsunamiSimulation(cfg)
        eta = sim.run_serial_reference()["eta"]
        np.testing.assert_allclose(eta, np.flipud(eta), atol=1e-12)
        np.testing.assert_allclose(eta, np.fliplr(eta), atol=1e-12)

    def test_synthetic_reference_rejected(self):
        sim = TsunamiSimulation(small_cfg(synthetic=True))
        with pytest.raises(ValueError):
            sim.run_serial_reference()


class TestParallelEquivalence:
    @pytest.mark.parametrize("px,py", [(2, 2), (4, 2), (1, 4), (4, 4)])
    def test_bitwise_equal_to_serial(self, px, py):
        """Decomposition must not change a single bit of the solution."""
        cfg = small_cfg(px=px, py=py, iterations=12)
        sim = TsunamiSimulation(cfg)
        states = run_program(sim.make_program(), cfg.grid.nranks)
        parallel_eta = sim.gather_global_field(states, "eta")
        serial = sim.run_serial_reference()
        np.testing.assert_array_equal(parallel_eta, serial["eta"])
        parallel_u = sim.gather_global_field(states, "u")
        np.testing.assert_array_equal(parallel_u, serial["u"])

    def test_allreduce_reports_global_max(self):
        cfg = small_cfg(iterations=4, allreduce_every=4)
        sim = TsunamiSimulation(cfg)
        states = run_program(sim.make_program(), cfg.grid.nranks)
        global_eta = sim.gather_global_field(states, "eta")
        for state in states:
            assert state["eta_max"] == pytest.approx(np.abs(global_eta).max())

    def test_hook_is_called_each_iteration(self):
        cfg = small_cfg(iterations=5)
        sim = TsunamiSimulation(cfg)
        calls = []

        def hook(ctx, comm, sim_, state, iteration):
            if comm.rank == 0:
                calls.append(iteration)
            if False:
                yield

        run_program(sim.make_program(hook=hook), cfg.grid.nranks)
        assert calls == [0, 1, 2, 3, 4]

    def test_wrong_comm_size_raises(self):
        cfg = small_cfg()
        sim = TsunamiSimulation(cfg)
        with pytest.raises(Exception):
            run_program(sim.make_program(), 2)  # grid wants 4


class TestSyntheticMode:
    def test_synthetic_and_real_traces_match(self):
        """The synthetic fast path must reproduce the real byte matrix."""
        real_cfg = small_cfg(iterations=6, allreduce_every=3)
        synth_cfg = small_cfg(iterations=6, allreduce_every=3, synthetic=True)

        t_real = TraceRecorder(4)
        Engine(4, tracer=t_real).run(TsunamiSimulation(real_cfg).make_program())
        t_synth = TraceRecorder(4)
        Engine(4, tracer=t_synth).run(TsunamiSimulation(synth_cfg).make_program())
        np.testing.assert_array_equal(t_real.bytes_matrix, t_synth.bytes_matrix)
        np.testing.assert_array_equal(t_real.count_matrix, t_synth.count_matrix)

    def test_synthetic_returns_iteration_counter_only(self):
        cfg = small_cfg(synthetic=True, iterations=3, allreduce_every=0)
        states = run_program(TsunamiSimulation(cfg).make_program(), 4)
        assert all(s["iteration"] == 3 for s in states)


class TestWaveEquivalence:
    """use_waves=True and the per-message reference are one workload."""

    def _run(self, cfg):
        from repro.simmpi import Engine, TraceRecorder

        sim = TsunamiSimulation(cfg)
        tracer = TraceRecorder(cfg.grid.nranks, by_kind=True)
        engine = Engine(cfg.grid.nranks, tracer=tracer)
        states = engine.run(sim.make_program())
        return states, engine.rank_times(), tracer

    @pytest.mark.parametrize("synthetic", [False, True])
    def test_wave_matches_per_message(self, synthetic):
        from repro.apps.workload import ExecutionMode, with_mode

        cfg = TsunamiConfig(
            px=4, py=4, nx=16, ny=16, iterations=8, synthetic=synthetic,
            allreduce_every=3,
        )
        wave_states, wave_clocks, wave_tracer = self._run(cfg)
        ref_states, ref_clocks, ref_tracer = self._run(
            with_mode(cfg, ExecutionMode.PER_MESSAGE)
        )
        assert wave_clocks == ref_clocks
        np.testing.assert_array_equal(
            wave_tracer.bytes_matrix, ref_tracer.bytes_matrix
        )
        np.testing.assert_array_equal(
            wave_tracer.count_matrix, ref_tracer.count_matrix
        )
        if not synthetic:
            for wave_state, ref_state in zip(wave_states, ref_states):
                np.testing.assert_array_equal(wave_state["eta"], ref_state["eta"])
                np.testing.assert_array_equal(wave_state["u"], ref_state["u"])
                np.testing.assert_array_equal(wave_state["v"], ref_state["v"])

    def test_wave_resume_from_initial_states(self):
        """Waves rebind to the cloned fields of a resumed run."""
        from repro.simmpi import run_program

        cfg = TsunamiConfig(px=2, py=2, nx=8, ny=8, iterations=6)
        sim = TsunamiSimulation(cfg)
        first = run_program(sim.make_program(iterations=3), 4)
        resumed = run_program(
            sim.make_program(iterations=6, initial_states=first), 4
        )
        straight = run_program(sim.make_program(iterations=6), 4)
        for resumed_state, straight_state in zip(resumed, straight):
            np.testing.assert_array_equal(
                resumed_state["eta"], straight_state["eta"]
            )
