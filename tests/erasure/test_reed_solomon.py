"""Reed–Solomon code tests: any-k-of-n recovery, property-based."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.erasure import DecodeError, ReedSolomonCode


def random_data(k, length, seed=0):
    rng = np.random.default_rng(seed)
    return rng.integers(0, 256, size=(k, length), dtype=np.uint8)


class TestEncode:
    def test_parity_shape(self):
        code = ReedSolomonCode(k=4, m=2)
        parity = code.encode(random_data(4, 64))
        assert parity.shape == (2, 64)

    def test_zero_parity_count(self):
        code = ReedSolomonCode(k=3, m=0)
        assert code.encode(random_data(3, 8)).shape == (0, 8)

    def test_encode_shards_stacks(self):
        code = ReedSolomonCode(k=2, m=1)
        data = random_data(2, 16)
        shards = code.encode_shards(data)
        assert shards.shape == (3, 16)
        np.testing.assert_array_equal(shards[:2], data)

    def test_wrong_shard_count(self):
        code = ReedSolomonCode(k=4, m=2)
        with pytest.raises(ValueError):
            code.encode(random_data(3, 8))

    def test_validation(self):
        with pytest.raises(ValueError):
            ReedSolomonCode(k=0, m=1)
        with pytest.raises(ValueError):
            ReedSolomonCode(k=200, m=100)

    def test_linearity(self):
        """RS is linear: parity(a ^ b) = parity(a) ^ parity(b)."""
        code = ReedSolomonCode(k=3, m=2)
        a = random_data(3, 32, seed=1)
        b = random_data(3, 32, seed=2)
        pa, pb = code.encode(a), code.encode(b)
        np.testing.assert_array_equal(code.encode(a ^ b), pa ^ pb)


class TestDecode:
    def test_all_data_survives_fast_path(self):
        code = ReedSolomonCode(k=3, m=2)
        data = random_data(3, 20)
        shards = {i: data[i] for i in range(3)}
        np.testing.assert_array_equal(code.decode(shards), data)

    @pytest.mark.parametrize("lost", [(0,), (2,), (0, 3), (1, 2)])
    def test_recovery_from_specific_losses(self, lost):
        code = ReedSolomonCode(k=4, m=2)
        data = random_data(4, 50)
        all_shards = code.encode_shards(data)
        survivors = {
            i: all_shards[i] for i in range(code.n) if i not in lost
        }
        np.testing.assert_array_equal(code.decode(survivors), data)

    def test_too_few_shards_raises(self):
        code = ReedSolomonCode(k=4, m=2)
        data = random_data(4, 10)
        shards = code.encode_shards(data)
        with pytest.raises(DecodeError):
            code.decode({0: shards[0], 1: shards[1], 2: shards[2]})

    def test_inconsistent_lengths_raise(self):
        code = ReedSolomonCode(k=2, m=1)
        with pytest.raises(DecodeError):
            code.decode({0: np.zeros(4, np.uint8), 1: np.zeros(5, np.uint8)})

    def test_bad_indices_raise(self):
        code = ReedSolomonCode(k=2, m=1)
        with pytest.raises(DecodeError):
            code.decode({0: np.zeros(4, np.uint8), 7: np.zeros(4, np.uint8)})

    def test_reconstruct_parity_shard(self):
        code = ReedSolomonCode(k=3, m=2)
        data = random_data(3, 16)
        shards = code.encode_shards(data)
        # Lose parity shard 4, rebuild it from the rest.
        survivors = {i: shards[i] for i in range(4)}
        np.testing.assert_array_equal(
            code.reconstruct_shard(survivors, 4), shards[4]
        )

    def test_reconstruct_data_shard(self):
        code = ReedSolomonCode(k=3, m=1)
        data = random_data(3, 16)
        shards = code.encode_shards(data)
        survivors = {0: shards[0], 2: shards[2], 3: shards[3]}
        np.testing.assert_array_equal(
            code.reconstruct_shard(survivors, 1), data[1]
        )

    def test_reconstruct_bad_index(self):
        code = ReedSolomonCode(k=2, m=1)
        data = random_data(2, 4)
        shards = code.encode_shards(data)
        with pytest.raises(DecodeError):
            code.reconstruct_shard({i: shards[i] for i in range(3)}, 9)


class TestAnyKOfNProperty:
    @settings(deadline=None, max_examples=50)
    @given(
        st.integers(1, 8),
        st.integers(0, 4),
        st.integers(1, 64),
        st.integers(0, 2**32 - 1),
    )
    def test_any_k_survivors_reconstruct(self, k, m, length, seed):
        """THE Reed–Solomon property: any k of k+m shards suffice."""
        code = ReedSolomonCode(k=k, m=m)
        data = random_data(k, length, seed=seed)
        shards = code.encode_shards(data)
        rng = np.random.default_rng(seed)
        keep = sorted(rng.choice(code.n, size=k, replace=False).tolist())
        survivors = {int(i): shards[i] for i in keep}
        np.testing.assert_array_equal(code.decode(survivors), data)

    @settings(deadline=None, max_examples=20)
    @given(st.integers(2, 6), st.integers(1, 3), st.integers(0, 2**31))
    def test_byte_ops_model(self, k, m, seed):
        code = ReedSolomonCode(k=k, m=m)
        assert code.encoding_byte_ops(1000) == k * m * 1000
