"""XOR single-parity code tests."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.erasure import XorCode, XorDecodeError


def random_data(k, length, seed=0):
    rng = np.random.default_rng(seed)
    return rng.integers(0, 256, size=(k, length), dtype=np.uint8)


class TestEncode:
    def test_parity_is_xor(self):
        code = XorCode(k=3)
        data = np.array([[1, 2], [4, 8], [16, 32]], dtype=np.uint8)
        np.testing.assert_array_equal(code.encode(data), [21, 42])

    def test_counts(self):
        code = XorCode(k=5)
        assert code.n == 6 and code.m == 1

    def test_validation(self):
        with pytest.raises(ValueError):
            XorCode(k=0)
        with pytest.raises(ValueError):
            XorCode(k=2).encode(random_data(3, 4))


class TestDecode:
    def test_no_loss_passthrough(self):
        code = XorCode(k=3)
        data = random_data(3, 10)
        shards = {i: data[i] for i in range(3)}
        np.testing.assert_array_equal(code.decode(shards), data)

    @pytest.mark.parametrize("lost", [0, 1, 2])
    def test_single_data_loss_recovered(self, lost):
        code = XorCode(k=3)
        data = random_data(3, 25)
        parity = code.encode(data)
        shards = {i: data[i] for i in range(3) if i != lost}
        shards[3] = parity
        np.testing.assert_array_equal(code.decode(shards), data)

    def test_double_loss_fails(self):
        code = XorCode(k=3)
        data = random_data(3, 8)
        shards = {0: data[0], 3: code.encode(data)}
        with pytest.raises(XorDecodeError):
            code.decode(shards)

    def test_loss_without_parity_fails(self):
        code = XorCode(k=3)
        data = random_data(3, 8)
        shards = {0: data[0], 1: data[1]}
        with pytest.raises(XorDecodeError):
            code.decode(shards)

    def test_inconsistent_lengths(self):
        code = XorCode(k=2)
        with pytest.raises(XorDecodeError):
            code.decode({0: np.zeros(4, np.uint8), 2: np.zeros(6, np.uint8)})

    @settings(deadline=None, max_examples=40)
    @given(st.integers(1, 10), st.integers(1, 50), st.integers(0, 2**32 - 1))
    def test_any_single_loss_recovered(self, k, length, seed):
        code = XorCode(k=k)
        data = random_data(k, length, seed=seed)
        parity = code.encode(data)
        rng = np.random.default_rng(seed)
        lost = int(rng.integers(0, k))
        shards = {i: data[i] for i in range(k) if i != lost}
        shards[k] = parity
        np.testing.assert_array_equal(code.decode(shards), data)

    def test_byte_ops_model(self):
        assert XorCode(k=4).encoding_byte_ops(100) == 400
