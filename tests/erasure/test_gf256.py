"""GF(2^8) field tests — axioms verified property-based with hypothesis."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.erasure import (
    cauchy_matrix,
    gf_div,
    gf_inv,
    gf_mat_inv,
    gf_matmul,
    gf_mul,
    gf_mul_scalar_vec,
    gf_pow,
)

elements = st.integers(0, 255)
nonzero = st.integers(1, 255)


class TestFieldAxioms:
    @given(elements, elements)
    def test_commutativity(self, a, b):
        assert gf_mul(a, b) == gf_mul(b, a)

    @given(elements, elements, elements)
    def test_associativity(self, a, b, c):
        assert gf_mul(gf_mul(a, b), c) == gf_mul(a, gf_mul(b, c))

    @given(elements, elements, elements)
    def test_distributivity_over_xor(self, a, b, c):
        left = gf_mul(a, b ^ c)
        right = int(gf_mul(a, b)) ^ int(gf_mul(a, c))
        assert left == right

    @given(elements)
    def test_multiplicative_identity(self, a):
        assert gf_mul(a, 1) == a

    @given(elements)
    def test_zero_annihilates(self, a):
        assert gf_mul(a, 0) == 0

    @given(nonzero)
    def test_inverse(self, a):
        assert gf_mul(a, gf_inv(a)) == 1

    @given(nonzero, nonzero)
    def test_division_inverts_multiplication(self, a, b):
        assert gf_div(gf_mul(a, b), b) == a

    def test_zero_inverse_raises(self):
        with pytest.raises(ZeroDivisionError):
            gf_inv(0)
        with pytest.raises(ZeroDivisionError):
            gf_div(5, 0)

    @given(nonzero, st.integers(0, 20))
    def test_pow_matches_repeated_mul(self, a, n):
        expected = 1
        for _ in range(n):
            expected = int(gf_mul(expected, a))
        assert gf_pow(a, n) == expected

    @given(nonzero)
    def test_pow_negative_one_is_inverse(self, a):
        assert gf_pow(a, -1) == gf_inv(a)

    def test_pow_zero_base(self):
        assert gf_pow(0, 3) == 0
        assert gf_pow(0, 0) == 1
        with pytest.raises(ZeroDivisionError):
            gf_pow(0, -1)


class TestVectorized:
    def test_broadcasting(self):
        a = np.arange(256, dtype=np.uint8)
        out = gf_mul(a, 7)
        assert out.shape == (256,)
        assert out[0] == 0 and out[1] == 7

    def test_mul_scalar_vec_matches_mul(self):
        v = np.arange(256, dtype=np.uint8)
        np.testing.assert_array_equal(gf_mul_scalar_vec(29, v), gf_mul(29, v))

    def test_mul_scalar_vec_zero_coeff(self):
        v = np.arange(10, dtype=np.uint8)
        assert gf_mul_scalar_vec(0, v).sum() == 0

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            gf_mul(300, 2)

    @given(st.integers(0, 255), st.integers(0, 255))
    def test_no_zero_divisors(self, a, b):
        if a != 0 and b != 0:
            assert gf_mul(a, b) != 0


class TestMatrices:
    def test_matmul_identity(self):
        rng = np.random.default_rng(0)
        b = rng.integers(0, 256, size=(4, 16), dtype=np.uint8)
        eye = np.eye(4, dtype=np.uint8)
        np.testing.assert_array_equal(gf_matmul(eye, b), b)

    def test_matmul_shape_mismatch(self):
        with pytest.raises(ValueError):
            gf_matmul(np.zeros((2, 3), dtype=np.uint8), np.zeros((4, 5), dtype=np.uint8))

    @given(st.integers(0, 2**32 - 1))
    def test_inverse_roundtrip(self, seed):
        rng = np.random.default_rng(seed)
        # Cauchy matrices are always invertible — use one as the test case.
        n = int(rng.integers(1, 8))
        perm = rng.permutation(256).astype(np.uint8)
        xs, ys = perm[:n], perm[n : 2 * n]
        mat = cauchy_matrix(xs, ys)
        inv = gf_mat_inv(mat)
        eye = np.eye(n, dtype=np.uint8)
        np.testing.assert_array_equal(gf_matmul(mat, inv), eye)
        np.testing.assert_array_equal(gf_matmul(inv, mat), eye)

    def test_singular_matrix_raises(self):
        mat = np.array([[1, 1], [1, 1]], dtype=np.uint8)
        with pytest.raises(np.linalg.LinAlgError):
            gf_mat_inv(mat)

    def test_non_square_inverse_rejected(self):
        with pytest.raises(ValueError):
            gf_mat_inv(np.zeros((2, 3), dtype=np.uint8))

    def test_cauchy_requires_disjoint_sets(self):
        with pytest.raises(ValueError):
            cauchy_matrix(np.array([1, 2]), np.array([2, 3]))

    def test_cauchy_definition(self):
        xs = np.array([4, 5], dtype=np.uint8)
        ys = np.array([0, 1], dtype=np.uint8)
        c = cauchy_matrix(xs, ys)
        for i, x in enumerate(xs):
            for j, y in enumerate(ys):
                assert gf_mul(c[i, j], x ^ y) == 1
