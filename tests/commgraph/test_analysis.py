"""Network-analysis tests (§IV-A measures), networkx as the oracle."""

import networkx as nx
import numpy as np
import pytest

from repro.commgraph import (
    CommGraph,
    degree_statistics,
    hierarchical_modularity_profile,
    modularity,
    node_graph,
    paper_tsunami_matrix,
    random_sparse_matrix,
    weighted_clustering_coefficient,
)
from repro.machine import BlockPlacement


def two_blobs():
    m = np.zeros((8, 8))
    for i in range(4):
        for j in range(4):
            if i != j:
                m[i, j] = 10.0
                m[i + 4, j + 4] = 10.0
    m[0, 4] = m[4, 0] = 1.0
    return CommGraph(m)


class TestModularity:
    def test_community_partition_scores_high(self):
        g = two_blobs()
        labels = np.array([0, 0, 0, 0, 1, 1, 1, 1])
        assert modularity(g, labels) > 0.4

    def test_random_partition_scores_low(self):
        g = two_blobs()
        labels = np.array([0, 1, 0, 1, 0, 1, 0, 1])
        assert modularity(g, labels) < 0.05

    def test_single_cluster_is_zero(self):
        g = two_blobs()
        assert modularity(g, np.zeros(8, dtype=int)) == pytest.approx(0.0)

    def test_empty_graph(self):
        g = CommGraph(np.zeros((4, 4)))
        assert modularity(g, np.arange(4)) == 0.0

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            modularity(two_blobs(), np.zeros(3, dtype=int))

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_matches_networkx(self, seed):
        """Our Q equals networkx's weighted modularity on random graphs."""
        g = random_sparse_matrix(12, degree=3, rng=seed)
        w = g.symmetric() / 2.0
        np.fill_diagonal(w, 0.0)
        nxg = nx.from_numpy_array(w)
        rng = np.random.default_rng(seed)
        labels = rng.integers(0, 3, size=12)
        communities = [
            set(np.flatnonzero(labels == c)) for c in range(3)
        ]
        communities = [c for c in communities if c]
        expected = nx.community.modularity(nxg, communities, weight="weight")
        assert modularity(g, labels) == pytest.approx(expected)

    def test_paper_node_graph_is_strongly_modular(self):
        """§IV-A's premise: the workload's node graph has real community
        structure for the L1 partition to exploit (Q >= 0.3 rule of thumb)."""
        g = paper_tsunami_matrix(iterations=5)
        ng = node_graph(g, BlockPlacement(64, 16))
        labels = np.arange(64) // 4  # the paper's L1 partition
        assert modularity(ng, labels) > 0.3


class TestDegreeStatistics:
    def test_stencil_degrees(self):
        g = paper_tsunami_matrix(iterations=1)
        stats = degree_statistics(g)
        assert stats["max"] == 4.0  # interior: N/E/S/W
        assert stats["min"] == 2.0  # corners
        assert 2.0 < stats["mean"] < 4.0

    def test_uniform_graph(self):
        g = CommGraph(np.ones((5, 5)))
        stats = degree_statistics(g)
        assert stats["min"] == stats["max"] == 4.0


class TestClusteringCoefficient:
    def test_triangle_graph(self):
        m = np.zeros((3, 3))
        m[0, 1] = m[1, 2] = m[2, 0] = 1.0
        assert weighted_clustering_coefficient(CommGraph(m)) == pytest.approx(1.0)

    def test_stencil_has_no_triangles(self):
        """Grid graphs are triangle-free — why HPC needs *constructed*
        clusters rather than emergent communities."""
        g = paper_tsunami_matrix(iterations=1)
        assert weighted_clustering_coefficient(g) == 0.0

    def test_empty(self):
        assert weighted_clustering_coefficient(CommGraph(np.zeros((3, 3)))) == 0.0


class TestHierarchicalProfile:
    def test_l1_modular_l2_not(self):
        """The designed trade-off: L1 keeps segregation, the L2 refinement
        sacrifices it for distribution."""
        g = paper_tsunami_matrix(iterations=5)
        from repro.clustering import PartitionCost, hierarchical_clustering

        placement = BlockPlacement(64, 16)
        ng = node_graph(g, placement)
        c = hierarchical_clustering(ng, placement, cost=PartitionCost(1.0, 8.0))
        profile = hierarchical_modularity_profile(g, c.l1_labels, c.l2_labels)
        assert profile["l1_modularity"] > 0.3
        assert profile["l2_modularity"] < profile["l1_modularity"]
