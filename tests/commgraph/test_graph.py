"""CommGraph tests: cut/logged fractions, collapse, persistence."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.commgraph import CommGraph


def simple_graph():
    # 4 endpoints: heavy pair (0,1), heavy pair (2,3), light cross link.
    m = np.zeros((4, 4))
    m[1, 0] = m[0, 1] = 100.0
    m[3, 2] = m[2, 3] = 100.0
    m[2, 1] = 10.0
    return CommGraph(m)


class TestConstruction:
    def test_from_edges(self):
        g = CommGraph.from_edges(3, [(0, 1, 5), (0, 1, 3), (2, 0, 7)])
        assert g.matrix[1, 0] == 8
        assert g.matrix[0, 2] == 7

    def test_rejects_non_square(self):
        with pytest.raises(ValueError):
            CommGraph(np.zeros((2, 3)))

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            CommGraph(np.array([[0.0, -1.0], [0.0, 0.0]]))

    def test_total_excludes_diagonal(self):
        m = np.array([[5.0, 1.0], [2.0, 7.0]])
        assert CommGraph(m).total_bytes == 3.0


class TestCutAndLoggedFraction:
    def test_no_cut_when_together(self):
        g = simple_graph()
        assert g.cut_bytes(np.zeros(4, dtype=int)) == 0.0
        assert g.logged_fraction(np.zeros(4, dtype=int)) == 0.0

    def test_full_cut_when_all_separate(self):
        g = simple_graph()
        labels = np.arange(4)
        assert g.cut_bytes(labels) == pytest.approx(410.0)
        assert g.logged_fraction(labels) == pytest.approx(1.0)

    def test_natural_partition_cuts_only_bridge(self):
        g = simple_graph()
        labels = np.array([0, 0, 1, 1])
        assert g.cut_bytes(labels) == pytest.approx(10.0)
        assert g.logged_fraction(labels) == pytest.approx(10.0 / 410.0)

    def test_intra_fraction_complements(self):
        g = simple_graph()
        labels = np.array([0, 0, 1, 1])
        assert g.intra_fraction(labels) == pytest.approx(1.0 - 10.0 / 410.0)

    def test_empty_graph_logs_nothing(self):
        g = CommGraph(np.zeros((3, 3)))
        assert g.logged_fraction(np.arange(3)) == 0.0

    def test_label_shape_validation(self):
        g = simple_graph()
        with pytest.raises(ValueError):
            g.cut_bytes(np.zeros(3, dtype=int))

    def test_cluster_traffic(self):
        g = simple_graph()
        labels = np.array([0, 0, 1, 1])
        out = g.cluster_traffic(labels)
        assert out[0] == pytest.approx(10.0)  # 1 -> 2 crosses out of cluster 0
        assert out[1] == pytest.approx(0.0)

    @given(st.integers(0, 3), st.integers(0, 3), st.integers(0, 3), st.integers(0, 3))
    def test_logged_fraction_in_unit_interval(self, a, b, c, d):
        g = simple_graph()
        frac = g.logged_fraction(np.array([a, b, c, d]))
        assert 0.0 <= frac <= 1.0


class TestCollapse:
    def test_process_to_node_collapse(self):
        g = simple_graph()
        node_of = np.array([0, 0, 1, 1])
        ng = g.collapse(node_of)
        assert ng.n == 2
        assert ng.matrix[0, 0] == 200.0  # intra-node traffic on diagonal
        assert ng.matrix[1, 0] == 10.0

    def test_collapse_preserves_total(self):
        g = simple_graph()
        ng = g.collapse(np.array([0, 1, 0, 1]))
        assert ng.matrix.sum() == pytest.approx(g.matrix.sum())

    def test_explicit_group_count(self):
        g = simple_graph()
        ng = g.collapse(np.array([0, 0, 1, 1]), n_groups=5)
        assert ng.n == 5

    def test_bad_group_indices(self):
        g = simple_graph()
        with pytest.raises(ValueError):
            g.collapse(np.array([0, 0, 7, 1]), n_groups=3)

    def test_shape_validation(self):
        g = simple_graph()
        with pytest.raises(ValueError):
            g.collapse(np.array([0, 1]))


class TestDegreeDistribution:
    def test_star_graph(self):
        m = np.zeros((4, 4))
        m[1:, 0] = 10.0  # endpoint 0 sends to everyone
        g = CommGraph(m)
        deg = g.degree_distribution()
        assert deg[0] == 3
        assert list(deg[1:]) == [1, 1, 1]

    def test_self_traffic_ignored(self):
        m = np.eye(3) * 100
        assert CommGraph(m).degree_distribution().sum() == 0


class TestPersistence:
    def test_roundtrip(self, tmp_path):
        g = simple_graph()
        g.save(tmp_path / "g.npz")
        loaded = CommGraph.load(tmp_path / "g.npz")
        np.testing.assert_array_equal(loaded.matrix, g.matrix)
