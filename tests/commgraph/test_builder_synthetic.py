"""Builder & synthetic-matrix tests, incl. traced-vs-analytic agreement."""

import numpy as np
import pytest

from repro.apps import ProcessGrid, TsunamiConfig, TsunamiSimulation
from repro.commgraph import (
    CommGraph,
    app_graph_from_trace,
    graph_from_trace,
    node_graph,
    paper_tsunami_matrix,
    random_sparse_matrix,
    synthetic_stencil_matrix,
)
from repro.machine import BlockPlacement, FTIPlacement
from repro.simmpi import Engine, TraceRecorder


class TestSyntheticStencilMatrix:
    def test_matches_traced_tsunami_exactly(self):
        """The closed-form matrix equals the traced halo bytes."""
        cfg = TsunamiConfig(
            px=4, py=4, nx=32, ny=64, iterations=7, synthetic=True,
            allreduce_every=0,
        )
        tracer = TraceRecorder(16)
        Engine(16, tracer=tracer).run(TsunamiSimulation(cfg).make_program())
        analytic = synthetic_stencil_matrix(cfg.grid, iterations=7, nfields=3)
        np.testing.assert_array_equal(analytic.matrix, tracer.bytes_matrix)

    def test_symmetry(self):
        g = synthetic_stencil_matrix(ProcessGrid(4, 4, 16, 16), iterations=3)
        np.testing.assert_array_equal(g.matrix, g.matrix.T)

    def test_volume_scales_with_iterations(self):
        grid = ProcessGrid(2, 2, 8, 8)
        g1 = synthetic_stencil_matrix(grid, iterations=1)
        g5 = synthetic_stencil_matrix(grid, iterations=5)
        np.testing.assert_array_equal(g5.matrix, 5 * g1.matrix)

    def test_tall_tiles_make_ew_dominate(self):
        """The paper's aspect ratio: east-west volume >> north-south."""
        g = paper_tsunami_matrix(iterations=1)
        # rank 1 is east of rank 0; rank 32 is south of rank 0.
        ew = g.matrix[1, 0]
        ns = g.matrix[32, 0]
        assert ew / ns == pytest.approx(24.0)

    def test_paper_matrix_shape(self):
        g = paper_tsunami_matrix(iterations=2)
        assert g.n == 1024
        deg = g.degree_distribution()
        assert deg.max() == 4 and deg.min() == 2  # interior 4, corner 2


class TestGraphFromTrace:
    def test_whole_world(self):
        t = TraceRecorder(3)
        t.record(0, 1, 10)
        g = graph_from_trace(t)
        assert isinstance(g, CommGraph)
        assert g.matrix[1, 0] == 10

    def test_app_graph_strips_encoders(self):
        placement = FTIPlacement(2, 3)  # ranks 0..7, encoders 0 and 4
        t = TraceRecorder(8)
        t.record(1, 2, 100)   # app -> app
        t.record(0, 1, 50)    # encoder -> app: dropped
        t.record(5, 4, 30)    # app -> encoder: dropped
        g = app_graph_from_trace(t, placement)
        assert g.n == 6
        # world 1 -> app 0, world 2 -> app 1.
        assert g.matrix[1, 0] == 100
        assert g.total_bytes == 100

    def test_app_graph_size_mismatch(self):
        with pytest.raises(ValueError):
            app_graph_from_trace(TraceRecorder(4), FTIPlacement(2, 3))


class TestNodeGraph:
    def test_world_level_collapse(self):
        t = TraceRecorder(4)
        t.record(0, 1, 5)   # same node under 2x2 block placement
        t.record(0, 2, 7)   # cross node
        g = graph_from_trace(t)
        ng = node_graph(g, BlockPlacement(2, 2))
        assert ng.n == 2
        assert ng.matrix[0, 0] == 5
        assert ng.matrix[1, 0] == 7

    def test_app_level_collapse(self):
        placement = FTIPlacement(2, 2)  # 6 world ranks, 4 app procs
        t = TraceRecorder(6)
        t.record(1, 2, 9)   # app0 -> app1, same node
        t.record(1, 4, 11)  # app0 -> encoder node1... world 4 is app? no:
        g = app_graph_from_trace(t, placement)
        ng = node_graph(g, placement, app_level=True)
        assert ng.n == 2
        assert ng.matrix[0, 0] == 9.0

    def test_app_level_requires_fti_placement(self):
        g = CommGraph(np.zeros((4, 4)))
        with pytest.raises(TypeError):
            node_graph(g, BlockPlacement(2, 2), app_level=True)

    def test_world_level_size_mismatch(self):
        g = CommGraph(np.zeros((4, 4)))
        with pytest.raises(ValueError):
            node_graph(g, BlockPlacement(2, 4))


class TestRandomSparse:
    def test_low_degree(self):
        g = random_sparse_matrix(20, degree=3, rng=42)
        deg = g.degree_distribution()
        assert deg.mean() <= 6  # ~3 out-partners + ~3 in-partners

    def test_deterministic_with_seed(self):
        a = random_sparse_matrix(10, rng=7)
        b = random_sparse_matrix(10, rng=7)
        np.testing.assert_array_equal(a.matrix, b.matrix)

    def test_no_self_loops(self):
        g = random_sparse_matrix(15, rng=3)
        assert np.trace(g.matrix) == 0
