"""Partitioner tests: invariants on random graphs, paper-graph calibration."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.clustering import PartitionCost, partition_node_graph
from repro.commgraph import (
    CommGraph,
    node_graph,
    paper_tsunami_matrix,
    random_sparse_matrix,
)
from repro.machine import BlockPlacement


#: Cost calibrated so the §V node graph yields the paper's 4-node L1 clusters.
PAPER_COST = PartitionCost(w_logging=1.0, w_restart=8.0)


class TestCostFunction:
    def test_all_together_minimizes_logging(self):
        g = random_sparse_matrix(12, rng=0)
        cost = PartitionCost(w_logging=1.0, w_restart=0.0)
        together = cost.evaluate(g, np.zeros(12, dtype=int))
        apart = cost.evaluate(g, np.arange(12))
        assert together == 0.0
        assert apart == pytest.approx(1.0)

    def test_all_apart_minimizes_restart(self):
        g = random_sparse_matrix(12, rng=0)
        cost = PartitionCost(w_logging=0.0, w_restart=1.0)
        together = cost.evaluate(g, np.zeros(12, dtype=int))
        apart = cost.evaluate(g, np.arange(12))
        assert together == pytest.approx(1.0)
        assert apart == pytest.approx(12 * (1 / 12) ** 2)


class TestPartitionInvariants:
    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_cover_and_min_size(self, seed):
        g = random_sparse_matrix(24, degree=3, rng=seed)
        labels = partition_node_graph(g, min_cluster_nodes=4)
        assert labels.shape == (24,)
        sizes = np.bincount(labels)
        assert (sizes >= 4).all()
        assert sizes.sum() == 24

    def test_max_size_respected(self):
        g = random_sparse_matrix(24, degree=3, rng=5)
        labels = partition_node_graph(
            g, min_cluster_nodes=2, max_cluster_nodes=6
        )
        assert np.bincount(labels).max() <= 6

    def test_deterministic(self):
        g = random_sparse_matrix(20, rng=9)
        a = partition_node_graph(g, min_cluster_nodes=2)
        b = partition_node_graph(g, min_cluster_nodes=2)
        np.testing.assert_array_equal(a, b)

    def test_labels_first_occurrence_ordered(self):
        g = random_sparse_matrix(16, rng=2)
        labels = partition_node_graph(g, min_cluster_nodes=2)
        seen: list[int] = []
        for lab in labels:
            if lab not in seen:
                seen.append(int(lab))
        assert seen == sorted(seen)

    def test_impossible_constraints_raise(self):
        g = random_sparse_matrix(10, rng=1)
        with pytest.raises(ValueError):
            partition_node_graph(g, min_cluster_nodes=4, max_cluster_nodes=2)
        with pytest.raises(ValueError):
            partition_node_graph(g, min_cluster_nodes=11)
        with pytest.raises(ValueError):
            partition_node_graph(g, min_cluster_nodes=0)

    def test_min_size_satisfiable_only_by_forced_merges(self):
        # A graph with zero traffic: only the restart term exists, so the
        # optimizer wants singletons — the floor must still be enforced.
        g = CommGraph(np.zeros((12, 12)))
        labels = partition_node_graph(g, min_cluster_nodes=3)
        assert (np.bincount(labels) >= 3).all()

    @settings(deadline=None, max_examples=20)
    @given(st.integers(0, 10_000), st.integers(6, 20))
    def test_random_graphs_partition_cleanly(self, seed, n):
        g = random_sparse_matrix(n, degree=3, rng=seed)
        labels = partition_node_graph(g, min_cluster_nodes=2)
        sizes = np.bincount(labels)
        assert sizes.sum() == n
        assert (sizes[sizes > 0] >= 2).all()


class TestQuality:
    def test_two_communities_are_separated(self):
        """Two dense blobs with a thin bridge must split at the bridge."""
        m = np.zeros((8, 8))
        for i in range(4):
            for j in range(4):
                if i != j:
                    m[i, j] = 100.0
                    m[i + 4, j + 4] = 100.0
        m[4, 3] = m[3, 4] = 1.0  # thin bridge
        g = CommGraph(m)
        labels = partition_node_graph(g, min_cluster_nodes=2)
        assert len(set(labels[:4])) == 1
        assert len(set(labels[4:])) == 1
        assert labels[0] != labels[4]

    def test_refinement_never_worsens_cost(self):
        g = random_sparse_matrix(30, degree=4, rng=11)
        cost = PartitionCost()
        rough = partition_node_graph(g, min_cluster_nodes=3, refine=False)
        refined = partition_node_graph(g, min_cluster_nodes=3, refine=True)
        assert cost.evaluate(g, refined) <= cost.evaluate(g, rough) + 1e-12


class TestPaperGraph:
    def test_yields_16_clusters_of_4_consecutive_nodes(self):
        """§V: 'the L1 clusters of 4 nodes correspond to 64 consecutive
        MPI processes'."""
        g = paper_tsunami_matrix(iterations=10)
        ng = node_graph(g, BlockPlacement(64, 16))
        labels = partition_node_graph(ng, min_cluster_nodes=4, cost=PAPER_COST)
        sizes = np.bincount(labels)
        assert len(sizes) == 16
        assert (sizes == 4).all()
        # Clusters are 4 *consecutive* nodes.
        np.testing.assert_array_equal(labels, np.arange(64) // 4)

    def test_logged_fraction_matches_table2(self):
        """Table II hierarchical row: 1.9 % of messages logged."""
        g = paper_tsunami_matrix(iterations=10)
        ng = node_graph(g, BlockPlacement(64, 16))
        labels = partition_node_graph(ng, min_cluster_nodes=4, cost=PAPER_COST)
        proc_labels = np.repeat(labels, 16)
        assert g.logged_fraction(proc_labels) == pytest.approx(0.019, abs=0.005)
