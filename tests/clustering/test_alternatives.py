"""Alternative-partitioner tests: spectral bisection & greedy modularity."""

import numpy as np
import pytest

from repro.clustering import modularity_partition, spectral_partition
from repro.commgraph import (
    CommGraph,
    modularity,
    node_graph,
    paper_tsunami_matrix,
    random_sparse_matrix,
)
from repro.machine import BlockPlacement


@pytest.fixture(scope="module")
def paper_ng():
    g = paper_tsunami_matrix(iterations=5)
    return g, node_graph(g, BlockPlacement(64, 16))


class TestSpectral:
    def test_paper_graph_reproduces_greedy_structure(self, paper_ng):
        """Independent method, same answer: 16 clusters of 4 consecutive
        nodes — strong evidence the structure is in the graph, not the
        optimizer."""
        _, ng = paper_ng
        labels = spectral_partition(ng, min_cluster_nodes=4, max_cluster_nodes=4)
        np.testing.assert_array_equal(labels, np.arange(64) // 4)

    def test_sizes_respect_cap(self):
        g = random_sparse_matrix(24, degree=3, rng=1)
        labels = spectral_partition(g, min_cluster_nodes=2, max_cluster_nodes=6)
        sizes = np.bincount(labels)
        assert (sizes <= 6).all()
        assert sizes.sum() == 24

    def test_two_blobs_split_at_bridge(self):
        m = np.zeros((8, 8))
        for i in range(4):
            for j in range(4):
                if i != j:
                    m[i, j] = m[i + 4, j + 4] = 10.0
        m[0, 4] = m[4, 0] = 0.1
        labels = spectral_partition(
            CommGraph(m), min_cluster_nodes=2, max_cluster_nodes=4
        )
        assert len(set(labels[:4])) == 1
        assert labels[0] != labels[4]

    def test_zero_traffic_graph_splits_evenly(self):
        g = CommGraph(np.zeros((8, 8)))
        labels = spectral_partition(g, min_cluster_nodes=2, max_cluster_nodes=2)
        assert (np.bincount(labels) == 2).all()

    def test_validation(self):
        g = random_sparse_matrix(8, rng=0)
        with pytest.raises(ValueError):
            spectral_partition(g, min_cluster_nodes=0)
        with pytest.raises(ValueError):
            spectral_partition(g, min_cluster_nodes=4, max_cluster_nodes=2)
        with pytest.raises(ValueError):
            spectral_partition(g, min_cluster_nodes=99)


class TestModularityPartition:
    def test_paper_graph_reproduces_greedy_structure(self, paper_ng):
        _, ng = paper_ng
        labels = modularity_partition(ng, min_cluster_nodes=4, max_cluster_nodes=4)
        np.testing.assert_array_equal(labels, np.arange(64) // 4)

    def test_finds_planted_communities(self):
        m = np.zeros((9, 9))
        for blob in range(3):
            idx = range(3 * blob, 3 * blob + 3)
            for i in idx:
                for j in idx:
                    if i != j:
                        m[i, j] = 5.0
        m[2, 3] = m[3, 2] = m[5, 6] = m[6, 5] = 0.2
        g = CommGraph(m)
        labels = modularity_partition(g)
        assert len(np.unique(labels)) == 3
        for blob in range(3):
            assert len(set(labels[3 * blob : 3 * blob + 3])) == 1

    def test_improves_over_singletons(self):
        g = random_sparse_matrix(16, degree=3, rng=5)
        labels = modularity_partition(g)
        assert modularity(g, labels) >= modularity(g, np.arange(16)) - 1e-12

    def test_min_size_enforced(self):
        g = random_sparse_matrix(12, degree=3, rng=2)
        labels = modularity_partition(g, min_cluster_nodes=3, max_cluster_nodes=6)
        sizes = np.bincount(labels)
        assert (sizes[sizes > 0] >= 3).all()

    def test_cap_enforced(self):
        g = random_sparse_matrix(12, degree=3, rng=3)
        labels = modularity_partition(g, max_cluster_nodes=4)
        assert np.bincount(labels).max() <= 4

    def test_empty_graph_respects_min_size(self):
        g = CommGraph(np.zeros((8, 8)))
        labels = modularity_partition(g, min_cluster_nodes=4, max_cluster_nodes=4)
        assert (np.bincount(labels) == 4).all()

    def test_validation(self):
        g = random_sparse_matrix(6, rng=0)
        with pytest.raises(ValueError):
            modularity_partition(g, min_cluster_nodes=7)


class TestCrossMethodAgreement:
    def test_all_three_partitioners_agree_on_paper_graph(self, paper_ng):
        """Greedy [24]-style, spectral, and modularity all produce the
        identical paper partition — the result is method-independent."""
        from repro.clustering import PartitionCost, partition_node_graph

        g, ng = paper_ng
        greedy = partition_node_graph(
            ng, min_cluster_nodes=4, cost=PartitionCost(1.0, 8.0)
        )
        spectral = spectral_partition(ng, min_cluster_nodes=4, max_cluster_nodes=4)
        modular = modularity_partition(ng, min_cluster_nodes=4, max_cluster_nodes=4)
        np.testing.assert_array_equal(greedy, spectral)
        np.testing.assert_array_equal(spectral, modular)
