"""Clustering base-type tests: labels, nesting, membership, stats."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.clustering import Clustering


class TestConstruction:
    def test_flat_clustering_mirrors_l1_into_l2(self):
        c = Clustering("flat", np.array([0, 0, 1, 1]))
        np.testing.assert_array_equal(c.l1_labels, c.l2_labels)
        assert not c.is_hierarchical

    def test_labels_are_densified(self):
        c = Clustering("sparse", np.array([5, 5, 9, 9]))
        np.testing.assert_array_equal(c.l1_labels, [0, 0, 1, 1])

    def test_hierarchical_nesting_accepted(self):
        l1 = np.array([0, 0, 0, 0, 1, 1, 1, 1])
        l2 = np.array([0, 0, 1, 1, 2, 2, 3, 3])
        c = Clustering("h", l1, l2)
        assert c.is_hierarchical
        assert c.n_l1_clusters == 2 and c.n_l2_clusters == 4

    def test_l2_crossing_l1_rejected(self):
        l1 = np.array([0, 0, 1, 1])
        l2 = np.array([0, 1, 1, 2])  # L2 cluster 1 spans both L1 clusters
        with pytest.raises(ValueError, match="spans L1"):
            Clustering("bad", l1, l2)

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            Clustering("bad", np.array([0, 0, 1]), np.array([0, 1]))

    def test_float_labels_rejected(self):
        with pytest.raises(ValueError):
            Clustering("bad", np.array([0.0, 1.0]))

    def test_negative_labels_rejected(self):
        with pytest.raises(ValueError):
            Clustering("bad", np.array([0, -1]))

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            Clustering("bad", np.array([], dtype=int))


class TestMembership:
    def make(self):
        l1 = np.array([0, 0, 0, 0, 1, 1, 1, 1])
        l2 = np.array([0, 1, 0, 1, 2, 3, 2, 3])
        return Clustering("h", l1, l2)

    def test_l1_members(self):
        c = self.make()
        np.testing.assert_array_equal(c.l1_members(1), [4, 5, 6, 7])

    def test_l2_members(self):
        c = self.make()
        np.testing.assert_array_equal(c.l2_members(2), [4, 6])

    def test_cluster_of_process(self):
        c = self.make()
        assert c.l1_of(5) == 1
        assert c.l2_of(5) == 3

    def test_l2_within_l1(self):
        c = self.make()
        assert c.l2_within_l1(0) == [0, 1]
        assert c.l2_within_l1(1) == [2, 3]

    def test_all_clusters_lists(self):
        c = self.make()
        assert len(c.l1_clusters()) == 2
        assert len(c.l2_clusters()) == 4

    def test_bounds(self):
        c = self.make()
        with pytest.raises(ValueError):
            c.l1_members(2)
        with pytest.raises(ValueError):
            c.l1_of(8)


class TestStatistics:
    def test_sizes(self):
        c = Clustering("x", np.array([0, 0, 0, 1]))
        np.testing.assert_array_equal(c.l1_sizes(), [3, 1])

    def test_l2_node_spread(self):
        l1 = np.array([0, 0, 0, 0])
        l2 = np.array([0, 0, 1, 1])
        c = Clustering("x", l1, l2)
        # procs 0,1 on node 0 and 1; procs 2,3 both on node 1.
        node_of = lambda p: [0, 1, 1, 1][p]
        np.testing.assert_array_equal(c.l2_node_spread(node_of), [2, 1])

    @given(st.lists(st.integers(0, 4), min_size=1, max_size=40))
    def test_sizes_sum_to_n(self, raw):
        c = Clustering("p", np.array(raw))
        assert c.l1_sizes().sum() == c.n
        assert c.l2_sizes().sum() == c.n

    @given(st.lists(st.integers(0, 4), min_size=1, max_size=40))
    def test_members_partition_processes(self, raw):
        c = Clustering("p", np.array(raw))
        seen = np.concatenate(c.l1_clusters())
        assert sorted(seen.tolist()) == list(range(c.n))


class TestDerivedCacheLRU:
    def test_hits_return_same_object(self):
        c = Clustering("c", np.arange(8) // 2)
        first = c.cached("probe", lambda: {"x": 1})
        assert c.cached("probe", lambda: {"x": 2}) is first

    def test_eviction_bounds_entries(self):
        c = Clustering("c", np.arange(8) // 2)
        limit = Clustering.CACHE_LIMIT
        for i in range(limit + 10):
            c.cached(("entry", i), lambda i=i: i)
        assert len(c._derived) == limit
        # Oldest entries fell out; the newest survive.
        assert ("entry", 0) not in c._derived
        assert ("entry", limit + 9) in c._derived

    def test_hit_refreshes_recency(self):
        c = Clustering("c", np.arange(8) // 2)
        limit = Clustering.CACHE_LIMIT
        for i in range(limit):
            c.cached(("entry", i), lambda i=i: i)
        c.cached(("entry", 0), lambda: "rebuilt?")  # hit: refresh entry 0
        c.cached(("overflow", 1), lambda: 1)  # evicts entry 1, not 0
        assert ("entry", 0) in c._derived
        assert ("entry", 1) not in c._derived

    def test_evicted_entries_are_rebuilt(self):
        c = Clustering("c", np.arange(8) // 2)
        builds = []
        key = ("rebuild-me", 0)
        c.cached(key, lambda: builds.append(1) or "v1")
        for i in range(Clustering.CACHE_LIMIT + 1):
            c.cached(("filler", i), lambda: None)
        assert key not in c._derived
        value = c.cached(key, lambda: builds.append(1) or "v2")
        assert value == "v2"
        assert len(builds) == 2


class TestPickling:
    def test_roundtrip_drops_derived_cache(self):
        import pickle

        c = Clustering("c", np.arange(12) // 6, np.arange(12) // 3)
        c.cached("big", lambda: np.zeros(1000))
        clone = pickle.loads(pickle.dumps(c))
        assert clone.name == c.name
        np.testing.assert_array_equal(clone.l1_labels, c.l1_labels)
        np.testing.assert_array_equal(clone.l2_labels, c.l2_labels)
        assert len(clone._derived) == 0
        # The clone's cache works independently.
        assert clone.cached("big", lambda: "fresh") == "fresh"
