"""Tests for the three flat strategies of §III."""

import numpy as np
import pytest

from repro.clustering import (
    consecutive_clustering,
    distributed_clustering,
    naive_clustering,
    size_guided_clustering,
)
from repro.machine import BlockPlacement


class TestConsecutive:
    def test_basic_blocks(self):
        c = consecutive_clustering(8, 4)
        np.testing.assert_array_equal(c.l1_labels, [0, 0, 0, 0, 1, 1, 1, 1])

    def test_remainder_cluster(self):
        c = consecutive_clustering(10, 4)
        assert c.n_l1_clusters == 3
        assert c.l1_sizes().tolist() == [4, 4, 2]

    def test_naive_default_is_32(self):
        c = naive_clustering(1024)
        assert c.name == "naive-32"
        assert c.n_l1_clusters == 32
        assert (c.l1_sizes() == 32).all()

    def test_size_guided_default_is_8(self):
        c = size_guided_clustering(1024)
        assert c.name == "size-guided-8"
        assert (c.l1_sizes() == 8).all()

    def test_validation(self):
        with pytest.raises(ValueError):
            consecutive_clustering(8, 0)
        with pytest.raises(ValueError):
            consecutive_clustering(0, 4)

    def test_flat_l2_equals_l1(self):
        c = naive_clustering(64, 8)
        np.testing.assert_array_equal(c.l1_labels, c.l2_labels)


class TestDistributed:
    def test_members_on_distinct_nodes(self):
        placement = BlockPlacement(8, 4)
        c = distributed_clustering(placement, 4)
        for cluster in c.l1_clusters():
            nodes = [placement.node_of_rank(int(r)) for r in cluster]
            assert len(set(nodes)) == len(nodes), "co-located members"

    def test_cluster_size_exact(self):
        placement = BlockPlacement(8, 4)
        c = distributed_clustering(placement, 4)
        assert (c.l1_sizes() == 4).all()
        assert c.n_l1_clusters == 8  # (8/4 bands) * 4 slots

    def test_paper_shape_64x16(self):
        """§III-C: one node failure with 16-wide striping touches 16 clusters."""
        placement = BlockPlacement(64, 16)
        c = distributed_clustering(placement, 16)
        node0_ranks = placement.ranks_of_node(0)
        touched = {c.l1_of(r) for r in node0_ranks}
        assert len(touched) == 16
        # Union of those clusters covers the whole 16-node band: 256 procs.
        union = set()
        for cl in touched:
            union.update(c.l1_members(cl).tolist())
        assert len(union) == 256

    def test_band_locality(self):
        """Clusters never span bands (keeps them within s consecutive nodes)."""
        placement = BlockPlacement(8, 2)
        c = distributed_clustering(placement, 4)
        for cluster in c.l1_clusters():
            bands = {placement.node_of_rank(int(r)) // 4 for r in cluster}
            assert len(bands) == 1

    def test_validation(self):
        placement = BlockPlacement(8, 4)
        with pytest.raises(ValueError):
            distributed_clustering(placement, 0)
        with pytest.raises(ValueError):
            distributed_clustering(placement, 16)  # > nnodes
        with pytest.raises(ValueError):
            distributed_clustering(placement, 3)  # does not divide 8
