"""Hierarchical-clustering tests (§IV-B structure, paper-scale shape)."""

import numpy as np
import pytest

from repro.clustering import (
    PartitionCost,
    hierarchical_clustering,
    l2_striping,
    validate_clustering,
)
from repro.commgraph import node_graph, paper_tsunami_matrix, random_sparse_matrix
from repro.machine import BlockPlacement

PAPER_COST = PartitionCost(w_logging=1.0, w_restart=8.0)


def paper_inputs(iterations=5):
    g = paper_tsunami_matrix(iterations=iterations)
    placement = BlockPlacement(64, 16)
    return g, node_graph(g, placement), placement


class TestL2Striping:
    def test_basic_striping(self):
        placement = BlockPlacement(4, 2)
        labels = l2_striping([[0, 1, 2, 3]], placement, l2_group_nodes=4)
        # Slot 0 of each node -> cluster 0; slot 1 -> cluster 1.
        np.testing.assert_array_equal(labels, [0, 1, 0, 1, 0, 1, 0, 1])

    def test_remainder_absorbed_into_last_group(self):
        placement = BlockPlacement(6, 1)
        labels = l2_striping([[0, 1, 2, 3, 4, 5]], placement, l2_group_nodes=4)
        # 6 nodes, group width 4 -> one group of 4? No: 6//4 = 1 group, the
        # remainder (2 nodes) joins it -> a single 6-wide group.
        assert len(set(labels.tolist())) == 1

    def test_incomplete_cover_raises(self):
        placement = BlockPlacement(4, 1)
        with pytest.raises(ValueError, match="cover"):
            l2_striping([[0, 1]], placement)

    def test_bad_group_width(self):
        placement = BlockPlacement(4, 1)
        with pytest.raises(ValueError):
            l2_striping([[0, 1, 2, 3]], placement, l2_group_nodes=0)


class TestHierarchicalStructure:
    def test_node_alignment_and_distribution(self):
        g, ng, placement = paper_inputs()
        c = hierarchical_clustering(ng, placement, cost=PAPER_COST)
        report = validate_clustering(
            c,
            placement,
            require_node_aligned_l1=True,
            require_l2_distinct_nodes=True,
            min_nodes_per_l1=4,
            homogeneous_l2=True,
        )
        assert report.ok, report.violations

    def test_paper_shape_64_4(self):
        """Table II: hierarchical (64-4): L1 of 64 procs, L2 of 4."""
        g, ng, placement = paper_inputs()
        c = hierarchical_clustering(ng, placement, cost=PAPER_COST)
        assert c.name == "hierarchical-64-4"
        assert (c.l1_sizes() == 64).all()
        assert (c.l2_sizes() == 4).all()
        assert c.n_l1_clusters == 16
        assert c.n_l2_clusters == 256
        assert c.is_hierarchical

    def test_l2_nested_in_l1(self):
        g, ng, placement = paper_inputs()
        c = hierarchical_clustering(ng, placement, cost=PAPER_COST)
        for l1 in range(c.n_l1_clusters):
            nested = c.l2_within_l1(l1)
            assert len(nested) == 16  # 4 nodes x 16 ppn / 4-wide stripes

    def test_logged_fraction_beats_naive(self):
        """Hierarchical logs less than naive-32 (Table II: 1.9 vs 3.5 %)."""
        from repro.clustering import naive_clustering

        g, ng, placement = paper_inputs(iterations=10)
        c = hierarchical_clustering(ng, placement, cost=PAPER_COST)
        naive = naive_clustering(1024, 32)
        assert g.logged_fraction(c.l1_labels) < g.logged_fraction(naive.l1_labels)

    def test_size_mismatch_rejected(self):
        g, ng, placement = paper_inputs()
        with pytest.raises(ValueError):
            hierarchical_clustering(ng, BlockPlacement(32, 16), cost=PAPER_COST)

    def test_small_machine_single_group(self):
        """Machines with < 2 L2 groups per L1 still produce valid output."""
        g = random_sparse_matrix(8, rng=0)
        placement = BlockPlacement(8, 2)
        c = hierarchical_clustering(g, placement, min_nodes_per_l1=4)
        report = validate_clustering(
            c, placement, require_l2_distinct_nodes=True,
            require_node_aligned_l1=True,
        )
        assert report.ok, report.violations


class TestValidateClustering:
    def test_detects_colocated_l2(self):
        from repro.clustering import naive_clustering

        placement = BlockPlacement(4, 8)
        c = naive_clustering(32, 8)  # 8 consecutive on one node
        report = validate_clustering(
            c, placement, require_l2_distinct_nodes=True
        )
        assert not report.ok
        assert any("co-located" in v for v in report.violations)

    def test_detects_split_node(self):
        from repro.clustering import naive_clustering

        placement = BlockPlacement(2, 8)
        c = naive_clustering(16, 4)  # splits each node into 2 clusters
        report = validate_clustering(c, placement, require_node_aligned_l1=True)
        assert not report.ok

    def test_placement_required(self):
        from repro.clustering import naive_clustering

        c = naive_clustering(16, 4)
        report = validate_clustering(c, None, require_node_aligned_l1=True)
        assert not report.ok

    def test_raise_if_failed(self):
        from repro.clustering import naive_clustering

        placement = BlockPlacement(2, 8)
        c = naive_clustering(16, 4)
        report = validate_clustering(c, placement, require_node_aligned_l1=True)
        with pytest.raises(ValueError, match="validation failed"):
            report.raise_if_failed()

    def test_max_l2_size_and_homogeneity(self):
        from repro.clustering import Clustering

        c = Clustering("x", np.array([0, 0, 0, 0, 0, 0]), np.array([0, 0, 0, 0, 0, 1]))
        report = validate_clustering(c, max_l2_size=4, homogeneous_l2=True)
        assert not report.ok
        assert len(report.violations) == 2
