"""Adversary actors: fragment validity, composition, determinism."""

import numpy as np
import pytest

from repro.fuzz import (
    ACTOR_NAMES,
    ActorContext,
    FuzzShape,
    actor_by_name,
    compose_scenario,
)
from repro.fuzz.actors import ALL_ACTORS


SHAPE = FuzzShape()


class TestShape:
    def test_default_shape_matches_recovery_fixture(self):
        clustering = SHAPE.clustering()
        assert clustering.n == 16
        assert clustering.n_l1_clusters == 2
        assert clustering.n_l2_clusters == 4
        # One L2 stripe member per node: a 4-stripe survives 2 node losses.
        assert SHAPE.boundary_run_length() == 3

    def test_shape_roundtrip(self):
        assert FuzzShape.from_dict(SHAPE.to_dict()) == SHAPE

    def test_invalid_shapes_rejected(self):
        with pytest.raises(ValueError):
            FuzzShape(nnodes=6, cluster_nodes=4)
        with pytest.raises(ValueError):
            FuzzShape(px=3)


class TestActors:
    @pytest.mark.parametrize("name", ACTOR_NAMES)
    def test_fragments_are_valid_and_deterministic(self, name):
        ctx = ActorContext(SHAPE)
        actor = actor_by_name(name)
        for seed in range(5):
            a = actor.generate(ctx, np.random.default_rng(seed))
            b = actor.generate(ctx, np.random.default_rng(seed))
            assert a == b
            # Events stay inside the horizon (replayable iterations).
            for f in a.schedule.failures:
                assert 1 <= f.iteration <= SHAPE.iterations

    def test_burst_targets_the_catastrophic_boundary(self):
        ctx = ActorContext(SHAPE)
        actor = actor_by_name("burst")
        lengths = set()
        for seed in range(30):
            fragment = actor.generate(ctx, np.random.default_rng(seed))
            for f in fragment.schedule.failures:
                lengths.add(len(f.event.nodes))
        assert lengths  # bursts were generated
        assert lengths <= {ctx.boundary - 1, ctx.boundary, ctx.boundary + 1}

    def test_corruption_actor_always_provides_trigger(self):
        ctx = ActorContext(SHAPE)
        actor = actor_by_name("corrupt")
        for seed in range(10):
            fragment = actor.generate(ctx, np.random.default_rng(seed))
            assert fragment.corruption is not None
            kinds = [f.event.kind for f in fragment.schedule.failures]
            assert "node" in kinds

    def test_unknown_actor_rejected(self):
        with pytest.raises(ValueError, match="unknown actor"):
            actor_by_name("gremlin")


class TestComposition:
    def test_compose_is_deterministic(self):
        names = tuple(ACTOR_NAMES)
        a = compose_scenario(SHAPE, names, np.random.default_rng(3), seed=3)
        b = compose_scenario(SHAPE, names, np.random.default_rng(3), seed=3)
        assert a == b

    def test_composed_schedule_is_always_valid(self):
        """The composer must only ever emit schedules the hardened
        FailureScenario constructor accepts — conflicting fragments are
        dropped, not force-merged."""
        names = tuple(ACTOR_NAMES)
        for seed in range(20):
            scenario = compose_scenario(
                SHAPE, names, np.random.default_rng(seed), seed=seed
            )
            dead = set()
            for f in scenario.schedule.failures:
                if f.event.kind == "node":
                    assert not dead.intersection(f.event.nodes)
                    dead.update(f.event.nodes)
            assert set(scenario.actor_names) <= set(names)

    def test_conflicting_fragment_is_dropped_in_actor_order(self):
        """Two kill-happy actors on a tiny machine: later conflicting
        fragments vanish, earlier ones stay."""
        dropped_some = False
        for seed in range(30):
            scenario = compose_scenario(
                SHAPE,
                ("burst", "cascade", "burst", "cascade"),
                np.random.default_rng(seed),
                seed=seed,
            )
            if len(scenario.actor_names) < 4:
                dropped_some = True
        assert dropped_some

    def test_all_actors_registered(self):
        assert len(ALL_ACTORS) == 7
        assert len(set(ACTOR_NAMES)) == 7
        assert "interleave" in ACTOR_NAMES
