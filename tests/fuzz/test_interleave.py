"""Interleaving exploration wired through the fuzzer.

Three layers under test: the focused schedule sweep (``repro fuzz
--schedules N``) with its shrink → repro-file → replay pipeline, the
executor's phase-A schedule differential (``schedule_divergence``
classification + recorded trace), and the ``interleave`` actor /
scenario-shrinker integration.
"""

import json

import numpy as np
import pytest

from repro.failures import FailureScenario
from repro.fuzz import (
    CLASSIFICATIONS,
    FuzzScenario,
    FuzzShape,
    InterleavingSpec,
    compose_scenario,
    execute_scenario,
    replay_interleaving,
    run_schedule,
    scenario_from_dict,
    scenario_to_dict,
    shrink,
    sweep,
)
from repro.fuzz.actors import InterleavingActor, ActorContext
from repro.fuzz.executor import classify
from repro.fuzz.interleave import DEADLOCK, finding_to_dict

RACE = InterleavingSpec(workload="race-demo")


class TestSpec:
    def test_unknown_workload_rejected(self):
        with pytest.raises(ValueError, match="unknown workload"):
            InterleavingSpec(workload="nope")

    def test_dict_round_trip(self):
        spec = InterleavingSpec(workload="fti", nodes=2, app_per_node=2)
        assert InterleavingSpec.from_dict(spec.to_dict()) == spec


@pytest.fixture(scope="module")
def race_sweep():
    return sweep(RACE, n_schedules=24)


class TestRaceDemoSweep:
    def test_finds_the_deadlock_schedules(self, race_sweep):
        assert race_sweep.n_schedules == 24
        assert race_sweep.findings, "no deadlocking schedule in 24 seeds"
        for finding in race_sweep.findings:
            assert finding.kind == DEADLOCK
            assert finding.blocked == (0,)
            assert finding.trace, "finding lost its schedule trace"

    def test_sweep_is_deterministic(self, race_sweep):
        again = sweep(RACE, n_schedules=24)
        assert again.findings == race_sweep.findings
        assert again.permuted_batches == race_sweep.permuted_batches

    def test_shrunk_trace_is_minimal_and_still_deadlocks(self, race_sweep):
        finding = race_sweep.findings[0]
        # One permuted batch suffices for the race; the shrinker must
        # find that minimal schedule.
        assert len(finding.trace) == 1
        from repro.simmpi import ScheduleTrace

        outcome = run_schedule(
            RACE, schedule_trace=ScheduleTrace.from_entries(finding.trace)
        )
        assert outcome.status == "deadlock"
        assert outcome.blocked == (0,)

    def test_repro_file_replays_exactly(self, race_sweep, tmp_path):
        finding = race_sweep.findings[0]
        data = finding_to_dict(RACE, finding)
        path = tmp_path / "schedule_repro.json"
        path.write_text(json.dumps(data))
        observed, expected = replay_interleaving(
            json.loads(path.read_text())
        )
        assert observed == expected == DEADLOCK

    def test_replay_mismatch_exits_nonzero_via_cli(self, race_sweep, tmp_path):
        from repro.cli import main

        finding = race_sweep.findings[0]
        data = finding_to_dict(RACE, finding)
        good = tmp_path / "good.json"
        good.write_text(json.dumps(data))
        assert main(["fuzz", "--replay", str(good)]) == 0
        data["classification"] = "schedule_mismatch"
        stale = tmp_path / "stale.json"
        stale.write_text(json.dumps(data))
        assert main(["fuzz", "--replay", str(stale)]) == 1

    def test_bench_record_shape(self, race_sweep):
        record = race_sweep.to_record()
        assert record["section"] == "interleaving"
        assert record["schedules"] == 24
        assert record["seed_range"] == [0, 23]
        assert record["findings"].get(DEADLOCK) == len(race_sweep.findings)


class TestFTISweep:
    def test_fti_control_traffic_is_schedule_invariant(self):
        """The fig5 world has no wildcard arbitration races: every
        explored schedule must match canonical bit for bit (this is the
        property the nightly sweep hunts violations of)."""
        report = sweep(InterleavingSpec(), n_schedules=4, shrink=False)
        assert report.permuted_batches > 0
        assert report.findings == []


class TestExecutorScheduleDifferential:
    def test_classification_order(self):
        assert CLASSIFICATIONS.index("schedule_divergence") == 2
        assert classify(True, [], schedule_ok=False) == "schedule_divergence"
        # A phase-B deadlock outranks the schedule finding.
        assert classify(True, [], schedule_ok=True) == "agree"

    def test_seeded_scenario_agrees_and_records_trace(self):
        scenario = FuzzScenario(
            shape=FuzzShape(),
            schedule=FailureScenario(),
            schedule_seed=11,
        )
        result = execute_scenario(scenario)
        assert result.classification == "agree"
        assert result.schedule_ok
        assert result.schedule_trace, "no permutations recorded"
        # Replaying the recorded trace verbatim also agrees.
        replayed = execute_scenario(
            FuzzScenario(
                shape=FuzzShape(),
                schedule=FailureScenario(),
                schedule_trace=result.schedule_trace,
            )
        )
        assert replayed.classification == "agree"
        assert replayed.schedule_trace == result.schedule_trace

    def test_canonical_scenario_has_no_trace(self):
        scenario = FuzzScenario(
            shape=FuzzShape(), schedule=FailureScenario()
        )
        result = execute_scenario(scenario)
        assert result.schedule_trace is None
        assert result.schedule_ok


class TestActorWiring:
    def test_interleave_actor_contributes_a_seed(self):
        ctx = ActorContext(FuzzShape())
        fragment = InterleavingActor().generate(
            ctx, np.random.default_rng(0)
        )
        assert fragment.schedule_seed is not None
        assert fragment.schedule.n_failures == 0

    def test_compose_carries_the_schedule_seed(self):
        scenario = compose_scenario(
            FuzzShape(),
            ("interleave", "soft"),
            np.random.default_rng(1),
            seed=1,
        )
        assert scenario.schedule_seed is not None
        assert "schedule-seed" in scenario.describe()
        assert "interleave" in scenario.actor_names


class TestShrinkAndReproFiles:
    def test_shrink_reverts_unneeded_schedule(self):
        """When the interleaving is not implicated in the class, the
        shrinker drops it back to the canonical schedule."""
        scenario = FuzzScenario(
            shape=FuzzShape(),
            schedule=FailureScenario(),
            schedule_seed=11,
        )
        outcome = shrink(scenario, target="agree", max_executions=16)
        assert outcome.scenario.schedule_seed is None
        assert outcome.scenario.schedule_trace is None
        assert outcome.final_cost < outcome.original_cost

    def test_v2_round_trip_preserves_schedule_fields(self):
        scenario = FuzzScenario(
            shape=FuzzShape(),
            schedule=FailureScenario(),
            schedule_seed=7,
            schedule_trace=((0, (1, 0)), (4, (2, 0, 1))),
        )
        data = scenario_to_dict(scenario, "agree")
        assert data["version"] == 2
        restored, classification = scenario_from_dict(data)
        assert restored == scenario
        assert classification == "agree"

    def test_v1_files_still_load(self):
        scenario = FuzzScenario(
            shape=FuzzShape(), schedule=FailureScenario()
        )
        data = scenario_to_dict(scenario, "agree")
        data["version"] = 1
        del data["schedule_seed"]
        del data["schedule_trace"]
        restored, _ = scenario_from_dict(data)
        assert restored.schedule_seed is None
        assert restored.schedule_trace is None
