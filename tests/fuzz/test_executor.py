"""Executor: classification semantics + the kernel-safety assertions."""

import pytest

from repro.failures import FailureEvent, FailureScenario, ScheduledFailure
from repro.fuzz import (
    CorruptionSpec,
    FuzzScenario,
    FuzzShape,
    PerturbationSpec,
    execute_scenario,
)

SHAPE = FuzzShape()


def scenario(**kwargs):
    kwargs.setdefault("shape", SHAPE)
    kwargs.setdefault("schedule", FailureScenario())
    return FuzzScenario(**kwargs)


class TestKernelSafety:
    def test_kernel_fast_path_off_under_injection(self):
        """Acceptance criterion: kernel_runs == 0 while injection is
        active, and the engine says why. The executor raises if the fast
        path ever ran; here we also assert the recorded deopt reasons."""
        result = execute_scenario(
            scenario(schedule=FailureScenario.node_failure(6, 1))
        )
        deopts = dict(result.kernel_deopts)
        assert deopts, "injection must record a kernel deopt reason"
        assert "failure-injection" in deopts
        assert result.engine_ok

    def test_clean_scenario_keeps_kernels_on(self):
        """No injected failures: the synthetic differential run is free to
        use the kernel fast path (no deopt recorded)."""
        result = execute_scenario(scenario())
        assert result.classification == "agree"
        assert dict(result.kernel_deopts) == {}

    def test_perturbed_network_engine_equivalence(self):
        """Perturbation without failures exercises the PerturbedNetwork
        bit-identity through both engine fast paths: any pricing drift
        between fast and scalar engines flags engine_divergence."""
        result = execute_scenario(
            scenario(
                perturbation=PerturbationSpec(
                    rank_factors=((2, 3.0),),
                    bad_nodes=(1,),
                    link_factor=2.5,
                    jitter_amp=0.2,
                )
            )
        )
        assert result.engine_ok
        assert result.classification == "agree"


class TestClassification:
    def test_single_node_failure_agrees(self):
        """One node loss is survivable and the protocol indeed recovers
        bitwise: model and observation agree."""
        result = execute_scenario(
            scenario(schedule=FailureScenario.node_failure(6, 1))
        )
        assert result.classification == "agree"
        (record,) = result.events
        assert not record.predicted_catastrophic
        assert record.observed == "recovered"
        assert record.observed_restart_fraction == pytest.approx(0.5)
        assert record.predicted_restart_fraction == pytest.approx(0.5)

    def test_soft_error_agrees(self):
        soft = ScheduledFailure(5, FailureEvent(kind="soft", process=3))
        result = execute_scenario(scenario(schedule=FailureScenario((soft,))))
        assert result.classification == "agree"
        assert result.events[0].observed == "recovered"

    def test_boundary_burst_is_catastrophic_and_agreed(self):
        """A 3-node run breaks an L2 stripe (tolerance 2): the model says
        catastrophic, the decode indeed fails — agreement on the bad
        side."""
        result = execute_scenario(
            scenario(schedule=FailureScenario.multi_node_failure(6, (0, 1, 2)))
        )
        assert result.classification == "agree"
        (record,) = result.events
        assert record.predicted_catastrophic
        assert record.observed == "lost"

    def test_corruption_falsifies_the_model(self):
        """Parity corruption + a survivable node kill: the model predicts
        recovery, the decoder hands back garbage — model_optimistic."""
        result = execute_scenario(
            scenario(
                schedule=FailureScenario.node_failure(6, 1),
                corruption=CorruptionSpec(target="parity", n_shards=4),
            )
        )
        assert result.classification == "model_optimistic"
        (record,) = result.events
        assert not record.predicted_catastrophic
        assert record.observed == "corrupt"

    def test_cumulative_damage_can_beat_the_per_event_model(self):
        """Three sequential single-node kills inside one L1 cluster: each
        is survivable in isolation (the model's per-event view — and with
        m = k parity even the second decode still has exactly k shards),
        but the third kill leaves fewer shards than the code needs."""
        schedule = FailureScenario.node_failure(5, 0).merge(
            FailureScenario.node_failure(6, 1),
            FailureScenario.node_failure(7, 2),
        )
        result = execute_scenario(scenario(schedule=schedule))
        assert result.classification == "model_optimistic"
        first, second, third = result.events
        assert first.observed == "recovered"
        assert second.observed == "recovered"
        assert not third.predicted_catastrophic
        assert third.observed == "lost"

    def test_empty_scenario_agrees(self):
        result = execute_scenario(scenario())
        assert result.classification == "agree"
        assert result.events == ()

    def test_total_wipeout_does_not_trip_the_deopt_assert(self):
        """Killing every node may strike before any rank reaches a
        kernel-eligible loop, so no deopt reason is recorded — the
        executor must classify the outcome instead of raising (found by
        the seed-42 campaign)."""
        result = execute_scenario(
            scenario(
                schedule=FailureScenario.multi_node_failure(
                    5, range(SHAPE.nnodes)
                )
            )
        )
        assert result.classification == "agree"
        (record,) = result.events
        assert record.predicted_catastrophic
        assert record.observed == "lost"
        assert record.predicted_restart_fraction == pytest.approx(1.0)
