"""PerturbationSpec composition and PerturbedNetwork bit-identity."""

import numpy as np
import pytest

from repro.fuzz import PerturbationSpec, PerturbedNetwork, apply_perturbation
from repro.machine import Machine


class TestSpec:
    def test_identity(self):
        assert PerturbationSpec().is_identity
        assert PerturbationSpec(bad_nodes=(1,)).is_identity  # factor 1
        assert not PerturbationSpec(rank_factors=((0, 2.0),)).is_identity
        assert not PerturbationSpec(jitter_amp=0.1).is_identity

    def test_validation(self):
        with pytest.raises(ValueError):
            PerturbationSpec(link_factor=0.5)
        with pytest.raises(ValueError):
            PerturbationSpec(jitter_amp=-0.1)

    def test_merge_takes_maxima(self):
        a = PerturbationSpec(
            rank_factors=((0, 2.0), (3, 5.0)), bad_nodes=(1,), link_factor=2.0
        )
        b = PerturbationSpec(
            rank_factors=((0, 4.0),), bad_nodes=(2,), jitter_amp=0.2
        )
        merged = a.merge(b)
        assert dict(merged.rank_factors) == {0: 4.0, 3: 5.0}
        assert merged.bad_nodes == (1, 2)
        assert merged.link_factor == 2.0
        assert merged.jitter_amp == 0.2

    def test_normalized_and_picklable(self):
        import pickle

        spec = PerturbationSpec(rank_factors=((3, 2.0), (1, 4.0)), bad_nodes=(5, 2))
        assert spec.rank_factors == ((1, 4.0), (3, 2.0))
        assert spec.bad_nodes == (2, 5)
        assert pickle.loads(pickle.dumps(spec)) == spec


class TestPerturbedNetwork:
    def _network(self, spec):
        machine = Machine(4, 2)
        return PerturbedNetwork(machine.network, spec, machine.nranks)

    def test_scalar_matches_vectorized_bitwise(self):
        """The discipline every engine fast path leans on must survive
        perturbation: transfer_time == transfer_times, bit for bit."""
        spec = PerturbationSpec(
            rank_factors=((1, 3.5), (6, 2.0)),
            bad_nodes=(2,),
            link_factor=4.0,
            jitter_amp=0.25,
        )
        net = self._network(spec)
        dests = np.arange(8)
        for src in range(8):
            vectorized = net.transfer_times(src, dests, 4096)
            for dst in range(8):
                assert net.transfer_time(src, dst, 4096) == vectorized[dst]

    def test_self_messages_stay_free(self):
        net = self._network(PerturbationSpec(rank_factors=((0, 9.0),)))
        assert net.transfer_time(0, 0, 1 << 20) == 0.0

    def test_slow_rank_applies_to_both_directions(self):
        base = Machine(4, 2).network
        net = self._network(PerturbationSpec(rank_factors=((1, 3.0),)))
        plain = base.transfer_time(1, 5, 1024)
        assert net.transfer_time(1, 5, 1024) == 3.0 * plain
        assert net.transfer_time(5, 1, 1024) == 3.0 * plain

    def test_bad_node_penalizes_touching_messages(self):
        base = Machine(4, 2).network
        net = self._network(
            PerturbationSpec(bad_nodes=(1,), link_factor=5.0)
        )
        # ranks 2, 3 live on node 1
        assert net.transfer_time(2, 6, 512) == 5.0 * base.transfer_time(2, 6, 512)
        assert net.transfer_time(4, 6, 512) == base.transfer_time(4, 6, 512)

    def test_jitter_is_deterministic(self):
        net_a = self._network(PerturbationSpec(jitter_amp=0.3))
        net_b = self._network(PerturbationSpec(jitter_amp=0.3))
        for src, dst in [(0, 5), (3, 1), (7, 2)]:
            assert net_a.transfer_time(src, dst, 256) == net_b.transfer_time(
                src, dst, 256
            )

    def test_apply_perturbation_installs_and_identity_is_noop(self):
        machine = Machine(4, 2)
        original = machine.network
        apply_perturbation(machine, PerturbationSpec())
        assert machine.network is original
        apply_perturbation(machine, PerturbationSpec(jitter_amp=0.1))
        assert isinstance(machine.network, PerturbedNetwork)
