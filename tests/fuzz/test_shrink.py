"""Shrinker + repro files: the seeded disagreement fixture acceptance.

The fixture is a deliberately noisy scenario that disagrees with the
model (parity corruption behind a survivable node kill, wrapped in
irrelevant extra events and perturbations). The shrinker must peel the
noise away while preserving the exact classification, and the emitted
repro file must re-trigger it deterministically through the same path
``repro fuzz --replay`` uses.
"""

import pytest

from repro.failures import FailureEvent, FailureScenario, ScheduledFailure
from repro.fuzz import (
    CorruptionSpec,
    FuzzScenario,
    FuzzShape,
    PerturbationSpec,
    execute_scenario,
    load_repro,
    save_repro,
    scenario_from_dict,
    scenario_to_dict,
    shrink,
)


def seeded_disagreement_fixture() -> FuzzScenario:
    """A known-bad scenario buried in noise (deterministic, no RNG)."""
    schedule = FailureScenario(
        (
            ScheduledFailure(3, FailureEvent(kind="soft", process=9)),
            ScheduledFailure(6, FailureEvent(kind="node", nodes=(1,))),
            ScheduledFailure(8, FailureEvent(kind="soft", process=12)),
        )
    )
    return FuzzScenario(
        shape=FuzzShape(),
        schedule=schedule,
        perturbation=PerturbationSpec(
            rank_factors=((4, 3.0),), jitter_amp=0.1
        ),
        corruption=CorruptionSpec(target="parity", n_shards=4),
        actor_names=("corrupt", "soft", "slow-rank"),
    )


@pytest.fixture(scope="module")
def shrunk():
    fixture = seeded_disagreement_fixture()
    baseline = execute_scenario(fixture)
    assert baseline.classification == "model_optimistic"
    return fixture, baseline, shrink(fixture, target="model_optimistic")


class TestShrink:
    def test_reduces_to_minimal_schedule(self, shrunk):
        fixture, _, outcome = shrunk
        assert outcome.classification == "model_optimistic"
        assert outcome.result.classification == "model_optimistic"
        # The noise is gone: one event, no perturbation, minimal shards.
        assert outcome.scenario.schedule.n_failures == 1
        assert outcome.scenario.perturbation.is_identity
        assert outcome.scenario.corruption is not None
        assert outcome.scenario.corruption.n_shards == 1
        assert outcome.final_cost < outcome.original_cost

    def test_surviving_event_is_the_trigger(self, shrunk):
        _, _, outcome = shrunk
        (event,) = outcome.scenario.schedule.failures
        assert event.event.kind == "node"

    def test_shrink_is_deterministic(self, shrunk):
        fixture, _, outcome = shrunk
        again = shrink(fixture, target="model_optimistic")
        assert again.scenario == outcome.scenario
        assert again.executions == outcome.executions

    def test_agreeing_scenario_shrinks_toward_empty(self):
        scenario = FuzzScenario(
            shape=FuzzShape(),
            schedule=FailureScenario.node_failure(6, 1).merge(
                FailureScenario(
                    (ScheduledFailure(4, FailureEvent(kind="soft", process=2)),)
                )
            ),
        )
        outcome = shrink(scenario, target="agree")
        assert outcome.result.classification == "agree"
        assert outcome.scenario.schedule.n_failures == 1


class TestReproFiles:
    def test_roundtrip_preserves_scenario(self, shrunk):
        _, _, outcome = shrunk
        data = scenario_to_dict(outcome.scenario, outcome.classification)
        restored, classification = scenario_from_dict(data)
        assert restored == outcome.scenario
        assert classification == "model_optimistic"

    def test_replay_retriggers_deterministically(self, shrunk, tmp_path):
        """Acceptance criterion: the shrunken repro file re-triggers the
        same failure class on replay."""
        _, _, outcome = shrunk
        path = save_repro(
            tmp_path / "repro.json", outcome.scenario, outcome.classification
        )
        restored, expected = load_repro(path)
        result = execute_scenario(restored)
        assert result.classification == expected == "model_optimistic"

    def test_replay_via_cli(self, shrunk, tmp_path, capsys):
        from repro.cli import main

        _, _, outcome = shrunk
        path = save_repro(
            tmp_path / "repro.json", outcome.scenario, outcome.classification
        )
        assert main(["fuzz", "--replay", str(path)]) == 0
        out = capsys.readouterr().out
        assert "model_optimistic" in out

    def test_replay_mismatch_fails_via_cli(self, shrunk, tmp_path):
        """A repro recording a class the scenario no longer reproduces
        must exit nonzero."""
        import json

        from repro.cli import main

        _, _, outcome = shrunk
        data = scenario_to_dict(outcome.scenario, "deadlock")
        path = tmp_path / "stale.json"
        path.write_text(json.dumps(data))
        assert main(["fuzz", "--replay", str(path)]) == 1

    def test_unsupported_version_rejected(self):
        with pytest.raises(ValueError, match="unsupported repro version"):
            scenario_from_dict({"version": 99})
