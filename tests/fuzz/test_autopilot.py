"""Campaign loop: bit-reproducibility, worker invariance, steering."""

import pytest

from repro.fuzz import FuzzCampaignConfig, run_campaign


def small_config(**kwargs):
    kwargs.setdefault("budget", 10)
    kwargs.setdefault("seed", 42)
    kwargs.setdefault("shrink_limit", 1)
    kwargs.setdefault("round_size", 5)
    return FuzzCampaignConfig(**kwargs)


@pytest.fixture(scope="module")
def baseline_report():
    return run_campaign(small_config())


class TestReproducibility:
    def test_same_seed_same_campaign(self, baseline_report):
        """Acceptance criterion: same seed + budget ⇒ identical scenario
        stream, classifications and shrunken repros."""
        again = run_campaign(small_config())
        assert again.scenarios == baseline_report.scenarios
        assert [r.classification for r in again.results] == [
            r.classification for r in baseline_report.results
        ]
        assert [o.scenario for o in again.shrunken] == [
            o.scenario for o in baseline_report.shrunken
        ]

    def test_worker_count_does_not_change_the_stream(self, baseline_report):
        """Acceptance criterion: the campaign is independent of the worker
        count — 2 pool workers replay the exact serial stream."""
        pooled = run_campaign(small_config(workers=2))
        assert pooled.scenarios == baseline_report.scenarios
        assert [r.classification for r in pooled.results] == [
            r.classification for r in baseline_report.results
        ]
        assert [o.scenario for o in pooled.shrunken] == [
            o.scenario for o in baseline_report.shrunken
        ]

    def test_different_seed_different_stream(self, baseline_report):
        other = run_campaign(small_config(seed=7, shrink_limit=0))
        assert other.scenarios != baseline_report.scenarios


class TestSteering:
    def test_disagreements_boost_actor_weights(self):
        """The steering invariant: exactly the actors that participated in
        a disagreeing scenario end the campaign with a boosted selection
        weight; everyone else stays at 1."""
        report = run_campaign(
            FuzzCampaignConfig(
                budget=24,
                seed=42,
                shrink_limit=0,
                round_size=6,
                actors=("soft", "corrupt"),
            )
        )
        assert report.disagreements
        boosted = {
            name
            for scenario, result in zip(report.scenarios, report.results)
            if result.disagrees
            for name in scenario.actor_names
        }
        assert boosted
        for name in report.config.actors:
            if name in boosted:
                assert report.final_weights[name] > 1.0
            else:
                assert report.final_weights[name] == 1.0

    def test_skewed_weights_skew_generation(self):
        """generate_scenarios honors the weight vector (the mechanism the
        steering loop drives)."""
        import numpy as np

        from repro.fuzz.autopilot import generate_scenarios
        from repro.util.rng import resolve_rng

        config = FuzzCampaignConfig(
            budget=40, seed=0, actors=("soft", "corrupt"), shrink_limit=0
        )
        scenarios = generate_scenarios(
            config,
            resolve_rng(0),
            40,
            np.array([1.0, 8.0]),
            start_index=0,
        )
        picks = {"soft": 0, "corrupt": 0}
        for scenario in scenarios:
            for name in scenario.actor_names:
                picks[name] += 1
        assert picks["corrupt"] > picks["soft"]

    def test_report_numbers_are_consistent(self, baseline_report):
        report = baseline_report
        assert len(report.scenarios) == len(report.results) == 10
        assert sum(report.classifications.values()) == 10
        assert 0.0 <= report.disagreement_rate <= 1.0
        assert report.scenarios_per_s > 0
        record = report.to_record()
        assert record["section"] == "fuzzer"
        assert record["scenarios"] == 10
        assert set(record["coverage"]) == set(report.config.actors)

    def test_shrunken_repros_preserve_their_class(self, baseline_report):
        for outcome in baseline_report.shrunken:
            assert outcome.result.classification == outcome.classification
            assert outcome.final_cost <= outcome.original_cost


class TestConfig:
    def test_invalid_budget(self):
        with pytest.raises(ValueError):
            FuzzCampaignConfig(budget=0)

    def test_unknown_actor_rejected_early(self):
        with pytest.raises(ValueError, match="unknown actor"):
            FuzzCampaignConfig(actors=("gremlin",))

    def test_summary_mentions_the_headline_numbers(self, baseline_report):
        text = baseline_report.summary()
        assert "10 scenarios" in text
        assert "disagreement rate" in text
