"""Smoke tests: every shipped example must run green end to end.

The examples are the library's front door; they execute as subprocesses
exactly as a user would run them, and each must exit 0 with its headline
output present.
"""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"

#: (script, args, a string its stdout must contain)
CASES = [
    ("quickstart.py", [], "hierarchical clustering is the only"),
    ("failure_recovery.py", [], "bit-identical"),
    ("design_space_sweep.py", [], "sweet spot"),
    ("trace_gallery.py", [], "Fig. 5b"),
    ("checkpoint_interval_study.py", [], "waste"),
    ("network_analysis.py", [], "all three agree exactly"),
    ("month_of_failures.py", [], "Best end-to-end efficiency: hierarchical"),
]


def test_all_examples_are_covered():
    """Every script in examples/ has a smoke case (no orphan examples)."""
    shipped = {p.name for p in EXAMPLES_DIR.glob("*.py")}
    covered = {name for name, _, _ in CASES}
    assert shipped == covered


def test_all_examples_are_documented():
    """Every script in examples/ is described in examples/README.md."""
    readme = (EXAMPLES_DIR / "README.md").read_text()
    undocumented = {
        p.name for p in EXAMPLES_DIR.glob("*.py") if f"`{p.name}`" not in readme
    }
    assert not undocumented, (
        f"examples missing from examples/README.md: {sorted(undocumented)}"
    )


@pytest.mark.parametrize("name,args,needle", CASES, ids=[c[0] for c in CASES])
def test_example_runs_green(name, args, needle):
    proc = subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / name), *args],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert proc.returncode == 0, proc.stderr[-2000:]
    assert needle in proc.stdout
