#!/usr/bin/env python
"""A month of failures: the four dimensions composed into one number.

Table II scores clusterings along four separate axes; an operator cares
about a single one — how much machine time fault tolerance eats. This
example simulates month-long campaigns of MTBF-distributed failures
against each clustering's concrete costs (checkpoint writes + encoding,
contained restores with erasure decode, catastrophic PFS rollbacks) and
prints the end-to-end efficiency, decomposed by cause.

Run:
    python examples/month_of_failures.py
"""

from repro.clustering import (
    distributed_clustering,
    hierarchical_clustering,
    naive_clustering,
    size_guided_clustering,
)
from repro.core import paper_scenario
from repro.models import CampaignConfig, CampaignSimulator
from repro.util import AsciiTable, format_duration


def main() -> None:
    scenario = paper_scenario(iterations=100)
    config = CampaignConfig(
        horizon_s=30 * 24 * 3600.0,
        checkpoint_interval_s=1800.0,
        node_mtbf_s=0.25 * 365 * 24 * 3600.0,
    )
    simulator = CampaignSimulator(scenario.machine, config)
    strategies = [
        naive_clustering(1024, 32),
        size_guided_clustering(1024, 8),
        distributed_clustering(scenario.placement, 16),
        hierarchical_clustering(
            scenario.node_comm_graph(),
            scenario.placement,
            cost=scenario.partition_cost,
        ),
    ]

    print("Simulating a month on a stressed 64-node machine "
          "(system MTBF ≈ 34 h, checkpoints every 30 min)…\n")
    table = AsciiTable(
        ["clustering", "failures", "catastrophic", "ckpt overhead",
         "rework", "restore", "efficiency"],
        title="One-month campaign, per clustering (mean of 5 samples)",
    )
    best_name, best_eff = None, -1.0
    for i, clustering in enumerate(strategies):
        runs = [simulator.run(clustering, rng=1000 + 31 * i + k) for k in range(5)]
        eff = sum(r.efficiency for r in runs) / len(runs)
        if eff > best_eff:
            best_name, best_eff = clustering.name, eff
        table.add_row(
            [
                clustering.name,
                sum(r.n_failures for r in runs),
                sum(r.n_catastrophic for r in runs),
                format_duration(sum(r.checkpoint_overhead_s for r in runs) / 5),
                format_duration(sum(r.rework_s for r in runs) / 5),
                format_duration(sum(r.restore_s for r in runs) / 5),
                f"{100 * eff:.2f}%",
            ]
        )
    print(table.render())
    print(f"\nBest end-to-end efficiency: {best_name} ({100 * best_eff:.2f}%).")
    print("Each flat strategy loses through its weak dimension — naive to "
          "slow encoding\nevery checkpoint, size-guided to catastrophic PFS "
          "rollbacks, distributed to\nwide restarts — while the hierarchical "
          "clustering pays none of them:\nthe paper's 'complete CR solution' "
          "claim, composed and measured.")


if __name__ == "__main__":
    main()
