#!/usr/bin/env python
"""Reproduce the Fig. 5a/5b communication-matrix views as ASCII heatmaps.

Runs the §V execution shape — tsunami application ranks plus one dedicated
FTI encoder process per node — through the discrete-event MPI simulator and
renders the traced byte matrix, pointing out each structure the paper
identifies in the zoomed view.

By default uses a scaled-down 16-node execution so it finishes in seconds;
pass ``--full`` for the paper's 64 x 17 = 1088-rank shape.

Run:
    python examples/trace_gallery.py [--full]
"""

import sys

import numpy as np

from repro.core import experiment_fig5ab


def main() -> None:
    full = "--full" in sys.argv
    if full:
        print("Running the full 1088-rank traced execution (~1 min)…")
        study = experiment_fig5ab(
            nodes=64, app_per_node=16, iterations=50, checkpoint_every=25
        )
    else:
        print("Running a scaled-down 16-node traced execution…")
        study = experiment_fig5ab(
            nodes=16, app_per_node=4, iterations=24, checkpoint_every=8
        )

    print()
    print(study.render_full(max_size=64))
    print()
    print(study.render_zoom())

    print()
    print("Annotations (cf. §V):")
    enc = study.encoder_ranks[:4]
    print(f"  * encoder processes at world ranks {enc} … — the app stencil")
    print("    diagonals are interrupted exactly there;")
    halo = study.kind_matrices["halo"]
    ready = study.kind_matrices["fti-ready"]
    ring = study.kind_matrices["fti-encode"]
    ag = study.kind_matrices["allgather"]
    total = study.bytes_matrix.sum()
    print(f"  * stencil ghost exchange: {100 * halo.sum() / total:.1f} % of bytes"
          " (the dark double diagonal);")
    avg_ready = int(ready.sum() / max(1, ready[ready > 0].size)) if ready.sum() else 0
    print(f"  * checkpoint-ready notifications into encoder rows: "
          f"{avg_ready} B avg per link (light horizontal lines);")
    print(f"  * encoder Reed–Solomon ring: {np.count_nonzero(ring)} links "
          "(isolated points at encoder intersections);")
    print(f"  * FTI_Init MPI_Allgather: {np.count_nonzero(ag)} links on "
          "power-of-two diagonals.")


if __name__ == "__main__":
    main()
