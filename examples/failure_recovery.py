#!/usr/bin/env python
"""End-to-end failure containment: checkpoint, kill a node, recover, verify.

Runs the tsunami application under the hybrid protocol (cluster-coordinated
checkpoints + Reed–Solomon encoding + inter-cluster message logging) on a
simulated 8-node machine, then:

1. kills a node (its SSD — checkpoints included — is wiped);
2. recovers *only* the failed L1 cluster: co-members reload local
   checkpoints, the dead node's ranks are rebuilt by erasure decoding;
3. replays the window since the checkpoint from the sender-based log;
4. verifies the recovered states match the failure-free execution **bit
   for bit**, then resumes the run to completion.

Run:
    python examples/failure_recovery.py
"""

import numpy as np

from repro.apps import TsunamiConfig, TsunamiSimulation
from repro.clustering import Clustering
from repro.failures import FailureEvent
from repro.hydee import RecoveryManager, run_with_protocol
from repro.machine import Machine
from repro.simmpi import run_program


def main() -> None:
    # 16 application ranks on 8 nodes; two L1 clusters of 4 nodes each,
    # L2 encoding stripes of 4 across each cluster's nodes (§IV-B).
    cfg = TsunamiConfig(px=4, py=4, nx=32, ny=32, iterations=20, allreduce_every=6)
    sim = TsunamiSimulation(cfg)
    machine = Machine(8, 2)
    l1 = np.array([0] * 8 + [1] * 8)
    l2 = np.array([(r // 2 // 4) * 2 + (r % 2) for r in range(16)])
    clustering = Clustering("hierarchical-8-4", l1, l2)

    print("Running 20 iterations under the hybrid protocol (checkpoint every 8)…")
    run = run_with_protocol(
        sim, machine, clustering, iterations=20, checkpoint_every=8
    )
    ck = run.checkpointer.stats
    print(f"  checkpoints written: {ck.local_writes} "
          f"({ck.local_bytes / 1024:.0f} KiB), encodings: {ck.encodings}")
    print(f"  inter-cluster messages logged: {run.log.logged_messages} "
          f"({run.log.logged_bytes / 1024:.0f} KiB)")

    failure_iteration = 20
    victim_node = 1
    print(f"\nInjecting a failure of node {victim_node} at iteration "
          f"{failure_iteration} (SSD wiped)…")
    manager = RecoveryManager(sim, machine, run)
    result = manager.recover(
        FailureEvent(kind="node", nodes=(victim_node,)),
        failure_iteration=failure_iteration,
    )
    print(f"  rolled back L1 cluster(s): {result.restarted_clusters} "
          f"({len(result.restarted_ranks)} of 16 ranks = "
          f"{100 * result.restart_fraction:.0f} %)")
    print(f"  rollback to checkpoint of iteration {result.rollback_iteration}")
    print(f"  erasure-decoded ranks (node lost): {result.decoded_ranks()}")

    print("\nVerifying against the failure-free execution…")
    reference = run_program(sim.make_program(iterations=failure_iteration), 16)
    for rank in result.restarted_ranks:
        np.testing.assert_array_equal(
            result.recovered_states[rank]["eta"], reference[rank]["eta"]
        )
    manager.verify_send_determinism(result)
    print("  recovered states are bit-identical; send-determinism verified.")

    print("\nResuming the application to iteration 28…")
    final = manager.resume(result, iterations=28)
    reference_full = run_program(sim.make_program(iterations=28), 16)
    for rank in range(16):
        np.testing.assert_array_equal(
            final[rank]["eta"], reference_full[rank]["eta"]
        )
    print("  resumed run matches the failure-free run to the last bit.")
    print("\nFailure containment demonstrated: the second cluster never "
          "rolled back, and the application state is exact.")


if __name__ == "__main__":
    main()
