#!/usr/bin/env python
"""§IV-A revisited: the brain-network analogy, measured on real workloads.

The paper justifies hierarchical clustering with neuroscience: functional
segregation (modular communities), degree distributions, and hierarchical
modularity. This example computes those measures on the actual workload
graphs and shows:

1. the tsunami node graph is strongly modular — and three *independent*
   partitioning methods (the [24]-style greedy optimizer, spectral
   bisection, Newman modularity) all discover the same 16 × 4-node L1
   structure;
2. the hierarchical clustering exhibits exactly the designed modularity
   profile: segregated at L1, deliberately de-segregated at L2;
3. the all-to-all spectral workload has *no* community structure — the
   §V caveat, quantified.

Run:
    python examples/network_analysis.py
"""

import numpy as np

from repro.apps import SpectralConfig, SpectralSimulation
from repro.clustering import (
    PartitionCost,
    hierarchical_clustering,
    modularity_partition,
    partition_node_graph,
    spectral_partition,
)
from repro.commgraph import (
    degree_statistics,
    graph_from_trace,
    hierarchical_modularity_profile,
    modularity,
    node_graph,
    paper_tsunami_matrix,
)
from repro.machine import BlockPlacement
from repro.simmpi import Engine, TraceRecorder


def main() -> None:
    g = paper_tsunami_matrix(iterations=100)
    placement = BlockPlacement(64, 16)
    ng = node_graph(g, placement)

    print("Degree distribution of the 1024-process tsunami graph "
          "(the 'low degree of connectivity' of [15]):")
    for key, value in degree_statistics(g).items():
        print(f"  {key:>5}: {value:.2f}")

    print("\nThree independent partitioners on the node graph:")
    greedy = partition_node_graph(
        ng, min_cluster_nodes=4, cost=PartitionCost(1.0, 8.0)
    )
    spectral = spectral_partition(ng, min_cluster_nodes=4, max_cluster_nodes=4)
    newman = modularity_partition(ng, min_cluster_nodes=4, max_cluster_nodes=4)
    for name, labels in [
        ("greedy [24]-style", greedy),
        ("spectral bisection", spectral),
        ("Newman modularity", newman),
    ]:
        sizes = sorted(set(np.bincount(labels).tolist()))
        print(f"  {name:>20}: {labels.max() + 1} clusters of {sizes} nodes, "
              f"Q = {modularity(ng, labels):.3f}")
    assert (greedy == spectral).all() and (spectral == newman).all()
    print("  -> all three agree exactly: the paper's 16 x 4-node L1 "
          "structure is a property of the workload, not of the optimizer.")

    clustering = hierarchical_clustering(
        ng, placement, cost=PartitionCost(1.0, 8.0)
    )
    profile = hierarchical_modularity_profile(
        g, clustering.l1_labels, clustering.l2_labels
    )
    print("\nHierarchical modularity profile (process graph):")
    print(f"  L1 (containment) Q = {profile['l1_modularity']:.3f}  "
          "<- segregation kept: little to log")
    print(f"  L2 (encoding)    Q = {profile['l2_modularity']:.3f}  "
          "<- segregation sacrificed for node-distribution")

    print("\nThe §V caveat — an all-to-all workload has no communities:")
    cfg = SpectralConfig(nranks=16, n=32, iterations=2, synthetic=True)
    tracer = TraceRecorder(16)
    Engine(16, tracer=tracer).run(SpectralSimulation(cfg).make_program())
    a2a = graph_from_trace(tracer)
    best_q = max(
        modularity(a2a, np.arange(16) // s) for s in (2, 4, 8)
    )
    print(f"  best modularity over balanced partitions: Q = {best_q:.3f} "
          "(~0: nothing to exploit)")
    print("  -> 'applications using collective communication patterns' "
          "need the partitioning treatment of [24] instead.")


if __name__ == "__main__":
    main()
