#!/usr/bin/env python
"""Walk the paper's design space: Fig. 3 and Fig. 4 as terminal charts.

Reproduces §III's study: the cluster-size trade-off for consecutive-rank
clusters (message logging vs recovery vs encoding time) and the
distribution study (reliability / logging / restart, distributed vs
non-distributed) — ending with the observation that motivates the
hierarchical design: every flat clustering fails at least one dimension.

Run:
    python examples/design_space_sweep.py
"""

from repro.core import (
    ascii_bars,
    experiment_fig3,
    experiment_fig4a,
    experiment_fig4bc,
    paper_scenario,
)


def main() -> None:
    scenario = paper_scenario(iterations=100)

    print("=" * 72)
    print("Fig. 3 — cluster-size study (consecutive-rank clusters)")
    print("=" * 72)
    study = experiment_fig3(scenario)
    print(study.render())
    print()
    print("Message-logging overhead by cluster size:")
    print(
        ascii_bars(
            [str(s) for s in study.sizes],
            [100 * f for f in study.logged_fraction],
            unit="%",
        )
    )
    print()
    print("Encoding time by cluster size (log scale, like Fig. 3b):")
    print(
        ascii_bars(
            [str(s) for s in study.sizes],
            study.encoding_s_per_gb,
            unit=" s/GB",
            log_scale=True,
        )
    )
    print(f"\nFig. 3a sweet spot (logging vs recovery): "
          f"{study.sweet_spot_3a()} processes — the paper picks 32.")

    print()
    print("=" * 72)
    print("Fig. 4a — reliability, distributed vs non-distributed (128 x 8)")
    print("=" * 72)
    rel = experiment_fig4a(sizes=(4, 8, 16))
    print(rel.render())
    print("\nNon-distributed clusters are orders of magnitude less reliable —")
    print("for sizes 4 and 8 a single node failure is already catastrophic.")

    print()
    print("=" * 72)
    print("Fig. 4b/4c — logging and restart cost of distribution (64 x 16)")
    print("=" * 72)
    dist = experiment_fig4bc(scenario, sizes=(4, 8, 16, 32))
    print(dist.render())
    idx32 = dist.sizes.index(32)
    print(f"\nAt 32-process clusters, distribution lifts the restart cost from "
          f"{100 * dist.restart_non_distributed[idx32]:.0f} % to "
          f"{100 * dist.restart_distributed[idx32]:.0f} % (Fig. 4c), and "
          f"logging to {100 * dist.logging_distributed[idx32]:.0f} %.")
    print("\nConclusion of §III: no flat clustering satisfies all four "
          "dimensions — hence the hierarchical design of §IV.")


if __name__ == "__main__":
    main()
