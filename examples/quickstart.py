#!/usr/bin/env python
"""Quickstart: score the paper's four clustering strategies (Table II).

Builds the §V evaluation scenario (1024-process tsunami communication
matrix on a 64-node TSUBAME2-like machine), evaluates all four clustering
strategies along the paper's four dimensions, and prints the Table II
comparison plus the Fig. 5c radar — showing that only the hierarchical
clustering satisfies every baseline requirement.

Run:
    python examples/quickstart.py
"""

from repro.core import ClusteringEvaluator, paper_scenario, radar_table


def main() -> None:
    print("Building the evaluation scenario (tsunami, 1024 procs, 64 nodes)…")
    scenario = paper_scenario(iterations=100)
    evaluator = ClusteringEvaluator.from_scenario(scenario)

    print("Scoring the four strategies on the four dimensions…\n")
    report = evaluator.evaluate_all()
    print(report.to_table())

    print()
    print(radar_table(report.normalized()))

    print()
    winners = report.satisfying()
    print(f"Strategies inside the baseline on every axis: {winners}")
    assert winners == ["hierarchical-64-4"], (
        "expected the paper's headline result: only hierarchical qualifies"
    )
    print("Reproduced the paper's conclusion: hierarchical clustering is the "
          "only strategy meeting all four large-scale requirements.")


if __name__ == "__main__":
    main()
