#!/usr/bin/env python
"""Extension study: what the encoding-time dimension buys end to end.

The paper motivates fast encoding by the checkpoint-frequency squeeze at
scale (§II-A). This example translates the encoding times of Table II into
whole-application efficiency with the Young/Daly optimal-interval model:
for each clustering's encoding speed, compute the optimal checkpoint
interval and the resulting waste at several machine scales (MTBF shrinking
with node count), using the heat-diffusion app as a second workload to
cross-check checkpoint volumes.

Run:
    python examples/checkpoint_interval_study.py
"""

from repro.apps import HeatConfig, HeatSimulation
from repro.clustering import naive_clustering
from repro.hydee import run_with_protocol
from repro.machine import Machine
from repro.models import EncodingTimeModel, WasteModel, young_interval
from repro.util import AsciiTable, GiB, format_duration


def main() -> None:
    # Checkpoint cost: 1 GiB/node at SSD speed + encoding at the Table II
    # rates for each clustering's L2 size.
    ssd_write_s = GiB / 360e6
    model = EncodingTimeModel()
    strategies = [
        ("naive-32", 32),
        ("distributed-16", 16),
        ("size-guided-8", 8),
        ("hierarchical (L2=4)", 4),
    ]

    table = AsciiTable(
        ["clustering", "ckpt cost", "opt. interval", "waste @1k nodes",
         "waste @10k", "waste @100k"],
        title="Daly-model efficiency per clustering (1 GiB/node checkpoints)",
    )
    node_mtbf_s = 5 * 365 * 24 * 3600.0  # 5 years per node
    for name, l2_size in strategies:
        cost = ssd_write_s + model.seconds_per_gb(l2_size)
        row = [name, format_duration(cost)]
        interval = None
        for nodes in (1_000, 10_000, 100_000):
            mtbf = node_mtbf_s / nodes
            wm = WasteModel(
                checkpoint_cost_s=cost, restart_cost_s=2 * cost, mtbf_s=mtbf
            )
            waste = wm.optimal_waste()
            if interval is None:
                interval = young_interval(cost, mtbf)
                row.append(format_duration(interval))
            row.append(f"{100 * waste:.1f}%")
        table.add_row(row)
    print(table.render())
    print("\nFast encoding (small L2 clusters) is what keeps the waste "
          "tolerable as the machine grows — the paper's §II motivation, "
          "quantified.")

    # Cross-check checkpoint volumes with a real protocol run on the heat app.
    print("\nRunning the heat-diffusion app under the protocol for real "
          "checkpoint volumes…")
    cfg = HeatConfig(px=4, py=4, nx=64, ny=64, iterations=12)
    sim = HeatSimulation(cfg)
    machine = Machine(8, 2)
    clustering = naive_clustering(16, 2)  # one cluster per node
    run = run_with_protocol(
        sim, machine, clustering, iterations=12, checkpoint_every=4
    )
    stats = run.checkpointer.stats
    per_ckpt = stats.local_bytes / max(1, stats.local_writes)
    print(f"  {stats.local_writes} rank-checkpoints, "
          f"{per_ckpt / 1024:.1f} KiB each, "
          f"encode time charged: {format_duration(stats.total_encode_time_s)}")


if __name__ == "__main__":
    main()
